"""Structured diagnostics: the output vocabulary of the static analyzer.

A :class:`Diagnostic` replaces the plain strings ``core/validation.py`` used
to return: every finding carries a stable rule id, a severity, a location
path (``module/<name>/<fsm>/<state>`` style) and a human-readable message.
A :class:`LintReport` is an ordered collection of diagnostics plus the
findings that were suppressed (kept for auditability — a suppressed finding
is still part of the machine-readable report).

Suppression entries are strings of the form ``"RULE"`` (silence a rule
everywhere in the carrying object's scope) or ``"RULE:fragment"`` (silence
the rule only where *fragment* occurs in the diagnostic's path or message).
They can be passed to the engine directly or attached to model objects
(``SystemModel``, modules, units, services, ``Fsm``) as a ``lint_suppress``
attribute.
"""

import json

#: Severity names, ordered from least to most severe.
SEVERITIES = ("info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity):
    """Numeric rank of *severity* (higher = more severe)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


class Diagnostic:
    """One finding of the static analyzer.

    Parameters
    ----------
    rule:
        Stable rule identifier (e.g. ``"RACE001"``); the catalog lives in
        :mod:`repro.lint.rules` and ``docs/lint.md``.
    severity:
        ``"info"``, ``"warning"`` or ``"error"``.
    path:
        Location of the finding, as a ``/``-separated path into the model
        (``module/SpeedControlMod/CORE/Compute`` or
        ``unit/SwHwUnit/service/SetupControl``).
    message:
        Human-readable description (no location prefix — the path carries
        the location).
    data:
        Optional dict of machine-readable details (signal names, writer
        contexts, ...); must be JSON-serialisable.
    legacy:
        Optional exact string the old ``validate_model`` API produced for
        this finding; used by the compatibility shim so existing callers
        keep seeing byte-identical problem strings.
    """

    __slots__ = ("rule", "severity", "path", "message", "data", "legacy")

    def __init__(self, rule, severity, path, message, data=None, legacy=None):
        severity_rank(severity)  # validates
        self.rule = rule
        self.severity = severity
        self.path = path
        self.message = message
        self.data = dict(data) if data else {}
        self.legacy = legacy

    @property
    def legacy_text(self):
        """The string the pre-diagnostics validation API reported."""
        if self.legacy is not None:
            return self.legacy
        return f"{self.path}: {self.message}"

    def format(self):
        """One-line text rendering used by the CLI."""
        return f"{self.severity:<7} {self.rule:<8} {self.path}: {self.message}"

    def as_dict(self):
        entry = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "message": self.message,
        }
        if self.data:
            entry["data"] = self.data
        return entry

    def matches(self, entry):
        """True when suppression *entry* (``"RULE"`` / ``"RULE:frag"``) applies."""
        rule, sep, fragment = entry.partition(":")
        if rule != self.rule:
            return False
        if not sep:
            return True
        return fragment in self.path or fragment in self.message

    def __repr__(self):
        return f"Diagnostic({self.rule}, {self.severity}, {self.path}: {self.message})"


class LintReport:
    """Ordered diagnostics plus the suppressed findings."""

    def __init__(self, target=""):
        self.target = target
        self.diagnostics = []
        self.suppressed = []

    # ----------------------------------------------------------------- build

    def add(self, diagnostic):
        self.diagnostics.append(diagnostic)
        return diagnostic

    def apply_suppressions(self, entries):
        """Move diagnostics matched by any of *entries* to :attr:`suppressed`.

        Each entry is either a plain suppression string or an
        ``(entry, path_prefix)`` pair; the pair form additionally requires
        the diagnostic's path to start with *path_prefix* (how suppressions
        attached to a model object are scoped to that object).
        """
        checks = []
        for entry in entries:
            if not entry:
                continue
            if isinstance(entry, str):
                checks.append((entry, ""))
            else:
                checks.append((entry[0], entry[1] or ""))
        if not checks:
            return
        kept = []
        for diagnostic in self.diagnostics:
            if any(diagnostic.matches(entry) and diagnostic.path.startswith(prefix)
                   for entry, prefix in checks):
                self.suppressed.append(diagnostic)
            else:
                kept.append(diagnostic)
        self.diagnostics = kept

    # ----------------------------------------------------------------- query

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if d.severity == "warning"]

    def by_rule(self, rule):
        return [d for d in self.diagnostics if d.rule == rule]

    def max_severity(self):
        """Most severe active severity, or ``None`` for a clean report."""
        worst = None
        for diagnostic in self.diagnostics:
            if worst is None or severity_rank(diagnostic.severity) > severity_rank(worst):
                worst = diagnostic.severity
        return worst

    def fails(self, threshold="error"):
        """True when any active diagnostic is at/above *threshold*."""
        floor = severity_rank(threshold)
        return any(severity_rank(d.severity) >= floor for d in self.diagnostics)

    def counts(self):
        counts = {name: 0 for name in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    def summary(self):
        """Compact machine-readable summary for job records / artefacts."""
        counts = self.counts()
        return {
            "target": self.target,
            "errors": counts["error"],
            "warnings": counts["warning"],
            "infos": counts["info"],
            "suppressed": len(self.suppressed),
            "rules": sorted({d.rule for d in self.diagnostics}),
        }

    def as_dict(self):
        return {
            "target": self.target,
            "summary": self.summary(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "suppressed": [d.as_dict() for d in self.suppressed],
        }

    # ---------------------------------------------------------------- render

    def render_text(self):
        lines = []
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.format())
        counts = self.counts()
        tail = (
            f"{self.target or 'model'}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info(s)"
        )
        if self.suppressed:
            tail += f", {len(self.suppressed)} suppressed"
        lines.append(tail)
        return "\n".join(lines)

    def render_json(self, indent=2):
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self):
        counts = self.counts()
        return (
            f"LintReport({self.target or 'model'}, errors={counts['error']}, "
            f"warnings={counts['warning']}, suppressed={len(self.suppressed)})"
        )
