"""Self-check of the analyzer: engineered mutants must trip their rules.

Two halves, both cheap enough for CI:

* **mutants** — each builder returns a small system model engineered to
  violate exactly one rule family; the selfcheck asserts the expected rule
  fires.  The duplicate-writer mutant is additionally co-simulated with
  ``detect_races=True`` on both kernels as the positive control of the
  static ⊇ dynamic race property (a detector that never fires would
  vacuously pass every inclusion check).
* **corpus** — the shipped applications (motor controller, two-axis table)
  and the first ten generated conformance systems must stay lint-clean:
  no errors, no warnings (explicitly suppressed findings are fine).

``python -m repro.lint --selfcheck`` runs both and reports each failure as
one line; the CI lint-smoke job gates on it.
"""

from repro.comm import handshake_channel
from repro.core import HardwareModule, SoftwareModule, SystemModel
from repro.core.comm_unit import CommunicationUnit
from repro.core.service import Service
from repro.ir import INT, Assign, FsmBuilder, var
from repro.ir.dtypes import word_type
from repro.ir.stmt import PortWrite
from repro.lint.engine import lint_model
from repro.lint.races import static_race_signals

#: Seeds of the generated-system corpus that must stay clean.
CORPUS_SEEDS = tuple(range(10))


def _producer_fsm(name, service, width=16):
    """Endless producer calling *service* once per completed handshake."""
    build = FsmBuilder(name)
    build.variable("VALUE", word_type(width), 1)
    with build.state("Send") as state:
        state.call(service, args=[var("VALUE")], then="Next")
    with build.state("Next") as state:
        state.go("Send", actions=[Assign("VALUE", var("VALUE") + 1)])
    return build.build(initial="Send")


def _consumer_fsm(name, service, width=16):
    build = FsmBuilder(name)
    build.variable("RX", word_type(width), 0)
    build.variable("TOTAL", INT, 0)
    with build.state("Receive") as state:
        state.call(service, store="RX", then="Accumulate")
    with build.state("Accumulate") as state:
        state.go("Receive", actions=[Assign("TOTAL", var("TOTAL") + var("RX"))])
    return build.build(initial="Receive")


def build_dup_writer_model():
    """Two hardware producers bound to ONE put service: a delta-cycle race.

    Both producer processes step their service-FSM instance on the same
    clock edge, so the channel's ``DATAIN``/``PUTRDY`` ports receive writes
    from two distinct processes in the same delta — statically flagged as
    RACE001, dynamically observable with ``detect_races=True``.
    """
    model = SystemModel("DupWriterMutant")
    model.add_comm_unit(handshake_channel("Net", put_name="Put",
                                          get_name="Get", prefix="NT"))
    model.add_hardware_module(
        HardwareModule("ProdA", [_producer_fsm("PRODA", "Put")]))
    model.add_hardware_module(
        HardwareModule("ProdB", [_producer_fsm("PRODB", "Put")]))
    model.add_software_module(
        SoftwareModule("Cons", _consumer_fsm("CONS", "Get")))
    model.bind("ProdA", "Put", "Net")
    model.bind("ProdB", "Put", "Net")
    model.bind("Cons", "Get", "Net")
    return model


def _single_network_model(name, producer_fsm):
    """One producer (with the given FSM) and one consumer on one channel."""
    model = SystemModel(name)
    model.add_comm_unit(handshake_channel("Net", put_name="Put",
                                          get_name="Get", prefix="NT"))
    model.add_software_module(SoftwareModule("Prod", producer_fsm))
    model.add_software_module(
        SoftwareModule("Cons", _consumer_fsm("CONS", "Get")))
    model.bind("Prod", "Put", "Net")
    model.bind("Cons", "Get", "Net")
    return model


def build_dead_state_model():
    """An FSM state no transition can reach (FSM002)."""
    build = FsmBuilder("PROD")
    build.variable("VALUE", word_type(16), 1)
    with build.state("Send") as state:
        state.call("Put", args=[var("VALUE")], then="Send")
    with build.state("Orphan") as state:
        state.go("Send")
    return _single_network_model("DeadStateMutant", build.build(initial="Send"))


def build_trap_state_model():
    """A non-done state with no way out (FSM003)."""
    build = FsmBuilder("PROD")
    build.variable("VALUE", word_type(16), 1)
    with build.state("Send") as state:
        state.call("Put", args=[var("VALUE")], then="Stuck")
    with build.state("Stuck"):
        pass
    return _single_network_model("TrapStateMutant", build.build(initial="Send"))


def build_bad_width_model():
    """A constant argument that can never fit the word-16 parameter (IF006)."""
    build = FsmBuilder("PROD")
    with build.state("Send") as state:
        state.call("Put", args=[1 << 20], then="Send")
    return _single_network_model("BadWidthMutant", build.build(initial="Send"))


def build_shadowed_model():
    """A guarded transition after an unconditional sibling (DF004)."""
    build = FsmBuilder("PROD")
    build.variable("VALUE", word_type(16), 1)
    with build.state("Send") as state:
        state.call("Put", args=[var("VALUE")], then="Pick")
    with build.state("Pick") as state:
        state.go("Send")
        state.go("Send", when=var("VALUE").ge(10))
    return _single_network_model("ShadowedMutant", build.build(initial="Send"))


def build_false_guard_model():
    """A guard the interval analysis proves can never be true (DF003)."""
    build = FsmBuilder("PROD")
    build.variable("VALUE", word_type(16), 1)
    with build.state("Send") as state:
        state.call("Put", args=[var("VALUE")], then="Pick")
    with build.state("Pick") as state:
        state.go("Send", when=var("VALUE").lt(0))
        state.go("Send")
    return _single_network_model("FalseGuardMutant",
                                 build.build(initial="Send"))


def build_bad_protocol_model():
    """A get service acknowledging without waiting for data (PROTO002).

    The mutant service strobes ``GETACK`` unconditionally from its initial
    state; pinning the channel's avail flag (``FULL``) to 0 cannot rule the
    write out, so the acknowledge escapes the data window.
    """
    from repro.comm.protocols.handshake import handshake_ports

    prefix = "NT_"
    build = FsmBuilder("Get")
    build.variable("VALUE", word_type(16), 0)
    build.returns("VALUE")
    build.ports(f"{prefix}BUF", f"{prefix}FULL", f"{prefix}GETACK")
    with build.state("INIT") as state:
        state.go("IDLE", actions=[PortWrite(f"{prefix}GETACK", 1)])
    with build.state("IDLE", done=True) as state:
        state.go("INIT", actions=[PortWrite(f"{prefix}GETACK", 0)])
    service = Service("Get", build.build(initial="INIT"), params=(),
                      returns=word_type(16))
    unit = CommunicationUnit("Net", ports=handshake_ports(prefix),
                             services=[service])
    model = SystemModel("BadProtocolMutant")
    model.add_comm_unit(unit)
    model.add_software_module(
        SoftwareModule("Cons", _consumer_fsm("CONS", "Get")))
    model.bind("Cons", "Get", "Net")
    return model


#: mutant name -> (builder, rule id that must fire).
MUTANTS = {
    "dup-writer": (build_dup_writer_model, "RACE001"),
    "dead-state": (build_dead_state_model, "FSM002"),
    "trap-state": (build_trap_state_model, "FSM003"),
    "bad-width": (build_bad_width_model, "IF006"),
    "shadowed": (build_shadowed_model, "DF004"),
    "false-guard": (build_false_guard_model, "DF003"),
    "bad-protocol": (build_bad_protocol_model, "PROTO002"),
}


def check_mutants():
    """Problem strings for mutants whose expected rule did not fire."""
    problems = []
    for name, (builder, rule) in MUTANTS.items():
        report = lint_model(builder())
        if not report.by_rule(rule):
            fired = sorted({d.rule for d in report.diagnostics})
            problems.append(
                f"mutant {name}: expected {rule}, got {fired or 'nothing'}")
    return problems


def check_dynamic_races(kernels=("production", "reference"), until=5_000):
    """Positive control of the static ⊇ dynamic race property.

    Co-simulates the duplicate-writer mutant with ``detect_races=True`` on
    every kernel; the dynamic detector must observe at least one race and
    every raced signal must be in the static RACE001 write-set analysis.
    """
    from repro.cosim import CosimSession

    model = build_dup_writer_model()
    static = static_race_signals(model)
    problems = []
    if not static:
        problems.append("dup-writer: static analysis found no race signals")
    for kernel in kernels:
        session = CosimSession(build_dup_writer_model(), kernel=kernel,
                               detect_races=True)
        session.run(until=until)
        dynamic = session.simulator.race_signals()
        if not dynamic:
            problems.append(
                f"dup-writer@{kernel}: no dynamic race observed "
                f"(static predicted {sorted(static)})")
        stray = dynamic - static
        if stray:
            problems.append(
                f"dup-writer@{kernel}: dynamic races {sorted(stray)} "
                "not predicted statically")
    return problems


def check_corpus(seeds=CORPUS_SEEDS):
    """The shipped apps and generated seeds must be lint-clean."""
    from repro.apps.motor_controller.system import build_system
    from repro.apps.motor_controller.two_axis import build_two_axis_system
    from repro.testkit.models import generate_system

    targets = [("app motor", build_system()[0]),
               ("app two-axis", build_two_axis_system()[0])]
    targets += [(f"seed {seed}", generate_system(seed).build_model())
                for seed in seeds]
    problems = []
    for label, model in targets:
        report = lint_model(model)
        for diagnostic in report.diagnostics:
            problems.append(f"{label}: {diagnostic.format()}")
    return problems


def run_selfcheck(log=None):
    """Run every selfcheck stage; returns the list of problems (empty = OK)."""
    stages = (("mutants", check_mutants),
              ("dynamic races", check_dynamic_races),
              ("corpus", check_corpus))
    problems = []
    for label, stage in stages:
        found = stage()
        problems.extend(found)
        if log is not None:
            status = "FAIL" if found else "ok"
            log(f"selfcheck {label}: {status}")
    return problems
