"""Static analysis over system models and the FSM IR.

The analyzer the paper's methodology calls for: catch co-design mistakes —
same-delta write races, dead/contradictory FSM transitions, interface and
protocol misuse — *before* simulation or synthesis.  ``lint_model`` returns
a :class:`LintReport` of structured :class:`Diagnostic` objects; the rule
catalog lives in :mod:`repro.lint.rules` and ``docs/lint.md``.

``python -m repro.lint`` is the command-line front end;
``core.validation.validate_model`` is a thin compatibility shim over the
same engine.
"""

from repro.lint.diagnostics import Diagnostic, LintReport, SEVERITIES
from repro.lint.engine import lint_model
from repro.lint.races import collect_write_contexts, static_race_signals
from repro.lint.rules import LEGACY_RULES, RULES, RULES_BY_ID

__all__ = [
    "Diagnostic",
    "LintReport",
    "SEVERITIES",
    "lint_model",
    "collect_write_contexts",
    "static_race_signals",
    "RULES",
    "RULES_BY_ID",
    "LEGACY_RULES",
]
