"""Interval evaluation of IR expressions.

The dataflow and interface passes need a conservative answer to "what values
can this expression take?".  The domain is a closed integer interval
``(lo, hi)`` or ``None`` for *unknown* (top).  The transfer functions mirror
the run-time semantics of :mod:`repro.ir.interp` exactly:

* comparisons and boolean operators return ``0``/``1`` (Python ints),
* truthiness is ``value != 0``,
* ``div``/``mod`` truncate toward zero; a divisor interval containing zero
  evaluates to *unknown* (the runtime raises),
* enum/string values only support ``eq``/``ne`` and only fold when both
  sides are constants — anything else is *unknown*.

Because every transfer function over-approximates, a verdict of
"definitely false" or "definitely out of range" is sound: the runtime can
never contradict it.
"""

from repro.ir.dtypes import BitType, BitVectorType, BoolType, EnumType, IntType
from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var

#: Convenience constants.
TRUE = (1, 1)
FALSE = (0, 0)
BOOLEAN = (0, 1)


def is_definitely_true(interval):
    """Every value in *interval* is truthy (non-zero)."""
    return interval is not None and (interval[0] > 0 or interval[1] < 0)


def is_definitely_false(interval):
    """Every value in *interval* is falsy (== 0)."""
    return interval == (0, 0)


def dtype_interval(dtype):
    """Value interval of a declared data type (``None`` for enums)."""
    if isinstance(dtype, (BitType, BoolType)):
        return (0, 1)
    if isinstance(dtype, IntType):
        return (dtype.low, dtype.high)
    if isinstance(dtype, BitVectorType):
        return (0, (1 << dtype.width) - 1)
    if isinstance(dtype, EnumType):
        return None
    return None


def is_disjoint(interval, bounds):
    """True when *interval* lies entirely outside *bounds* (both known)."""
    if interval is None or bounds is None:
        return False
    return interval[1] < bounds[0] or interval[0] > bounds[1]


def _trunc_div(a, b):
    """Truncating integer division (mirrors interp's ``div``)."""
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _binop(op, left, right, left_expr, right_expr):
    # Enum/string comparison: folds only for two string constants.
    if op in ("eq", "ne"):
        left_str = isinstance(left_expr, Const) and isinstance(left_expr.value, str)
        right_str = isinstance(right_expr, Const) and isinstance(right_expr.value, str)
        if left_str and right_str:
            same = left_expr.value == right_expr.value
            return TRUE if (same if op == "eq" else not same) else FALSE
        if left_str or right_str:
            return BOOLEAN

    if op in ("and", "or", "xor"):
        if op == "and":
            if is_definitely_false(left) or is_definitely_false(right):
                return FALSE
            if is_definitely_true(left) and is_definitely_true(right):
                return TRUE
            return BOOLEAN
        if op == "or":
            if is_definitely_true(left) or is_definitely_true(right):
                return TRUE
            if is_definitely_false(left) and is_definitely_false(right):
                return FALSE
            return BOOLEAN
        # xor: decided only when both sides are decided
        left_known = is_definitely_true(left) or is_definitely_false(left)
        right_known = is_definitely_true(right) or is_definitely_false(right)
        if left_known and right_known:
            value = int(is_definitely_true(left) != is_definitely_true(right))
            return (value, value)
        return BOOLEAN

    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        if left is None or right is None:
            return BOOLEAN
        (a_lo, a_hi), (b_lo, b_hi) = left, right
        if op == "eq":
            if a_hi < b_lo or a_lo > b_hi:
                return FALSE
            if a_lo == a_hi == b_lo == b_hi:
                return TRUE
            return BOOLEAN
        if op == "ne":
            if a_hi < b_lo or a_lo > b_hi:
                return TRUE
            if a_lo == a_hi == b_lo == b_hi:
                return FALSE
            return BOOLEAN
        if op == "lt":
            if a_hi < b_lo:
                return TRUE
            if a_lo >= b_hi:
                return FALSE
            return BOOLEAN
        if op == "le":
            if a_hi <= b_lo:
                return TRUE
            if a_lo > b_hi:
                return FALSE
            return BOOLEAN
        if op == "gt":
            if a_lo > b_hi:
                return TRUE
            if a_hi <= b_lo:
                return FALSE
            return BOOLEAN
        # ge
        if a_lo >= b_hi:
            return TRUE
        if a_hi < b_lo:
            return FALSE
        return BOOLEAN

    if left is None or right is None:
        return None
    (a_lo, a_hi), (b_lo, b_hi) = left, right
    if op == "add":
        return (a_lo + b_lo, a_hi + b_hi)
    if op == "sub":
        return (a_lo - b_hi, a_hi - b_lo)
    if op == "mul":
        corners = (a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi)
        return (min(corners), max(corners))
    if op == "min":
        return (min(a_lo, b_lo), min(a_hi, b_hi))
    if op == "max":
        return (max(a_lo, b_lo), max(a_hi, b_hi))
    if op == "div":
        if b_lo != b_hi or b_lo == 0:
            return None  # non-constant or zero divisor: unknown
        corners = (_trunc_div(a_lo, b_lo), _trunc_div(a_hi, b_lo))
        return (min(corners), max(corners))
    if op == "mod":
        if b_lo != b_hi or b_lo == 0:
            return None
        magnitude = abs(b_lo) - 1
        if a_lo >= 0:
            return (0, magnitude)
        if a_hi <= 0:
            return (-magnitude, 0)
        return (-magnitude, magnitude)
    return None


def _unop(op, operand):
    if op == "not":
        if is_definitely_true(operand):
            return FALSE
        if is_definitely_false(operand):
            return TRUE
        return BOOLEAN
    if operand is None:
        return None
    lo, hi = operand
    if op == "neg":
        return (-hi, -lo)
    if op == "abs":
        if lo >= 0:
            return (lo, hi)
        if hi <= 0:
            return (-hi, -lo)
        return (0, max(-lo, hi))
    return None


def eval_interval(expr, var_env=None, port_env=None, pins=None):
    """Evaluate *expr* to an interval or ``None`` (unknown).

    *var_env* / *port_env* map names to intervals (missing names are
    unknown).  *pins* optionally overrides port values — the protocol pass
    uses it to ask "can this guard hold while the ready window is down?".
    """
    var_env = var_env or {}
    port_env = port_env or {}
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            value = int(expr.value)
            return (value, value)
        if isinstance(expr.value, int):
            return (expr.value, expr.value)
        return None  # enum literal / string
    if isinstance(expr, Var):
        return var_env.get(expr.name)
    if isinstance(expr, PortRef):
        if pins and expr.port_name in pins:
            value = pins[expr.port_name]
            return (value, value)
        return port_env.get(expr.port_name)
    if isinstance(expr, BinOp):
        left = eval_interval(expr.left, var_env, port_env, pins)
        right = eval_interval(expr.right, var_env, port_env, pins)
        return _binop(expr.op, left, right, expr.left, expr.right)
    if isinstance(expr, UnOp):
        operand = eval_interval(expr.operand, var_env, port_env, pins)
        return _unop(expr.op, operand)
    return None
