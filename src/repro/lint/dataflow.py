"""FSM-level passes: structural checks and dataflow analysis.

Two families:

* **structural** (FSM001–FSM005) — the checks :func:`repro.ir.transform.check_fsm`
  performs, re-emitted as structured diagnostics.  The emission order and the
  message text replicate ``check_fsm`` exactly so the ``validate_model``
  compatibility shim can reproduce its historical strings byte-for-byte.
* **dataflow** (DF001–DF004) — use-before-init detection via a forward
  must-be-assigned analysis over the transition graph, dead-store detection,
  and statically-false / shadowed transition guards via interval evaluation
  (:mod:`repro.lint.intervals`).
"""

from repro.ir.stmt import Assign, If, PortWrite
from repro.ir.transform import reachable_states
from repro.ir.visitor import iter_expr_tree, variables_read, variables_written
from repro.ir.expr import Var
from repro.lint.diagnostics import Diagnostic
from repro.lint.intervals import (
    eval_interval,
    is_definitely_false,
    is_definitely_true,
)


def structural_pass(fsm, path, report, legacy_prefix=""):
    """FSM001–FSM005: re-emit ``check_fsm``'s findings as diagnostics."""

    def emit(rule, severity, where, message):
        report.add(Diagnostic(rule, severity, where, message,
                              legacy=f"{legacy_prefix}{message}"))

    for state in fsm.iter_states():
        for transition in state.transitions:
            if transition.target not in fsm.states:
                emit("FSM001", "error", f"{path}/{state.name}",
                     f"state {state.name!r}: transition targets unknown state "
                     f"{transition.target!r}")
    unreachable = set(fsm.states) - reachable_states(fsm)
    for name in sorted(unreachable):
        emit("FSM002", "warning", f"{path}/{name}",
             f"state {name!r} is unreachable from {fsm.initial!r}")
    declared = set(fsm.variables)
    for name in sorted(set(variables_read(fsm)) - declared):
        emit("FSM004", "error", path,
             f"variable {name!r} is read but never declared")
    for name in sorted(set(variables_written(fsm)) - declared):
        emit("FSM005", "error", path,
             f"variable {name!r} is written but never declared")
    for state in fsm.iter_states():
        if not state.transitions and state.name not in fsm.done_states:
            emit("FSM003", "error", f"{path}/{state.name}",
                 f"state {state.name!r} is a trap (no transitions, not done)")


# --------------------------------------------------------------------- DF001

def _expr_reads(expr, tracked, assigned, found):
    for node in iter_expr_tree(expr):
        if isinstance(node, Var) and node.name in tracked and node.name not in assigned:
            found.add(node.name)


def _exec_stmts(stmts, tracked, assigned, found):
    """Advance the must-be-assigned set through a statement list."""
    for stmt in stmts:
        if isinstance(stmt, Assign):
            _expr_reads(stmt.expr, tracked, assigned, found)
            assigned.add(stmt.target)
        elif isinstance(stmt, PortWrite):
            _expr_reads(stmt.expr, tracked, assigned, found)
        elif isinstance(stmt, If):
            _expr_reads(stmt.cond, tracked, assigned, found)
            then_set = set(assigned)
            _exec_stmts(stmt.then, tracked, then_set, found)
            else_set = set(assigned)
            _exec_stmts(stmt.orelse, tracked, else_set, found)
            common = then_set & else_set
            assigned.clear()
            assigned.update(common)


def _state_flow(state, tracked, entry_set, found=None):
    """Run one state; returns {target: must-assigned-at-entry} per transition."""
    if found is None:
        found = set()
    assigned = set(entry_set)
    _exec_stmts(state.actions, tracked, assigned, found)
    out = []
    for transition in state.transitions:
        t_assigned = set(assigned)
        if transition.call is not None:
            for arg in transition.call.args:
                _expr_reads(arg, tracked, t_assigned, found)
            if transition.call.store:
                t_assigned.add(transition.call.store)
        if transition.guard is not None:
            _expr_reads(transition.guard, tracked, t_assigned, found)
        _exec_stmts(transition.actions, tracked, t_assigned, found)
        out.append((transition.target, t_assigned))
    return out, found


def use_before_init_pass(fsm, path, report, pre_assigned=()):
    """DF001: reads of variables with no explicit initialiser that are not
    definitely assigned on every path reaching the read."""
    tracked = {
        name for name, decl in fsm.variables.items()
        if not getattr(decl, "explicit_init", True) and name not in pre_assigned
    }
    if not tracked:
        return
    # Fixpoint: must-be-assigned set at state entry (intersection over
    # predecessors, optimistic start).
    entry = {fsm.initial: frozenset()}
    worklist = [fsm.initial]
    while worklist:
        name = worklist.pop()
        if name not in fsm.states:
            continue
        flows, _ = _state_flow(fsm.states[name], tracked, entry[name])
        for target, assigned in flows:
            incoming = frozenset(assigned)
            if target not in entry:
                entry[target] = incoming
                worklist.append(target)
            else:
                merged = entry[target] & incoming
                if merged != entry[target]:
                    entry[target] = merged
                    worklist.append(target)
    # Reporting sweep over the final entry facts (declaration order).
    flagged = {}
    for state in fsm.iter_states():
        if state.name not in entry:
            continue  # unreachable: FSM002's business
        _, found = _state_flow(state, tracked, entry[state.name])
        for name in sorted(found):
            flagged.setdefault(name, state.name)
    for name, state_name in sorted(flagged.items()):
        report.add(Diagnostic(
            "DF001", "warning", f"{path}/{state_name}",
            f"variable {name!r} may be read before initialisation",
            data={"variable": name},
        ))


def dead_store_pass(fsm, path, report, pre_assigned=()):
    """DF002: declared variables that are written but never read."""
    read = set(variables_read(fsm))
    written = set(variables_written(fsm)) & set(fsm.variables)
    dead = written - read - {fsm.result_var} - set(pre_assigned)
    for name in sorted(dead):
        report.add(Diagnostic(
            "DF002", "warning", f"{path}/{name}",
            f"variable {name!r} is written but never read",
            data={"variable": name},
        ))


def guard_pass(fsm, path, report, var_env=None, port_env=None):
    """DF003 (statically-false guards) and DF004 (shadowed transitions).

    A transition is shadowed when an earlier sibling always fires: it has no
    service call (calls only fire once the callee completes) and its guard is
    absent or definitely true over the declared value ranges.
    """
    for state in fsm.iter_states():
        shadowing = None
        for index, transition in enumerate(state.transitions):
            where = f"{path}/{state.name}/t{index}"
            if shadowing is not None:
                report.add(Diagnostic(
                    "DF004", "warning", where,
                    f"transition to {transition.target!r} is unreachable: "
                    f"transition t{shadowing[0]} (to {shadowing[1]!r}) always "
                    "fires first",
                    data={"state": state.name, "shadowed_by": shadowing[0]},
                ))
                continue
            if transition.guard is not None:
                interval = eval_interval(transition.guard, var_env, port_env)
                if is_definitely_false(interval):
                    report.add(Diagnostic(
                        "DF003", "warning", where,
                        f"guard of transition to {transition.target!r} is "
                        "statically false",
                        data={"state": state.name},
                    ))
                    continue  # can never fire, so it shadows nothing
                always = is_definitely_true(interval)
            else:
                always = True
            if transition.call is None and always:
                shadowing = (index, transition.target)


def dataflow_passes(fsm, path, report, pre_assigned=(), var_env=None,
                    port_env=None):
    """Run DF001–DF004 on one FSM."""
    use_before_init_pass(fsm, path, report, pre_assigned)
    dead_store_pass(fsm, path, report, pre_assigned)
    guard_pass(fsm, path, report, var_env, port_env)
