"""Protocol-misuse checks (PROTO001–PROTO003).

The channel protocols in :mod:`repro.comm.protocols` share a port naming
discipline: a channel with prefix ``P`` exposes ``P DATAIN`` + ``P PUTRDY``
(producer side), a full/space flag (``P FULL`` or ``P PFULL``), and on the
consumer side an availability flag (``P FULL`` / ``P CAVAIL``) plus
``P GETACK``.  The rules below are derived from the protocol FSMs
themselves (handshake, FIFO): a correct access procedure

* writes the data and raises the strobe in the same action list (the
  controller samples ``DATAIN`` when it sees ``PUTRDY`` — data written in a
  different delta can be lost or stale),
* only raises ``GETACK`` on a path whose guard entails the data-available
  window (``FULL``/``CAVAIL`` == 1),
* only raises ``PUTRDY`` on a path that cannot execute while the channel
  is full.

The window rules are checked by *pinning* the window port to the forbidden
value and interval-evaluating the transition's effective condition — its own
guard conjoined with the negations of earlier sibling guards (the runtime
scans transitions in order; an earlier call transition may or may not fire,
so its guard is not negated).  Controllers are exempt: they implement the
protocol and legitimately write the flags.
"""

from repro.ir.stmt import If, PortWrite
from repro.lint.diagnostics import Diagnostic
from repro.lint.intervals import (
    dtype_interval,
    eval_interval,
    is_definitely_false,
    is_definitely_true,
)

_DATA_SUFFIX = "DATAIN"


def detect_channels(unit):
    """Channel port groups of *unit*, recognised by the naming discipline."""
    names = set(unit.ports)
    channels = []
    for name in sorted(names):
        if not name.endswith(_DATA_SUFFIX):
            continue
        prefix = name[: -len(_DATA_SUFFIX)]
        strobe = f"{prefix}PUTRDY"
        if strobe not in names:
            continue
        full = next(
            (p for p in (f"{prefix}PFULL", f"{prefix}FULL") if p in names), None
        )
        avail = next(
            (p for p in (f"{prefix}CAVAIL", f"{prefix}FULL") if p in names), None
        )
        ack = f"{prefix}GETACK"
        channels.append({
            "prefix": prefix,
            "data": name,
            "strobe": strobe,
            "full": full,
            "avail": avail,
            "ack": ack if ack in names else None,
        })
    return channels


def _sites(fsm):
    """Yield ``(location, guard_parts, writes)`` per action list.

    *guard_parts* is the list of expressions whose conjunction is the
    site's effective condition (empty = unconditional, e.g. state actions,
    which run on every step spent in the state).  *writes* maps port name
    -> written expression (last write wins, matching run-time order).
    """

    def port_writes(stmts, into):
        for stmt in stmts:
            if isinstance(stmt, PortWrite):
                into[stmt.port_name] = stmt.expr
            elif isinstance(stmt, If):
                port_writes(stmt.then, into)
                port_writes(stmt.orelse, into)
        return into

    for state in fsm.iter_states():
        if state.actions:
            yield state.name, [], port_writes(state.actions, {})
        negated = []
        blocked = False
        for index, transition in enumerate(state.transitions):
            if not blocked and transition.actions:
                parts = list(negated)
                if transition.guard is not None:
                    parts.append(transition.guard)
                yield (f"{state.name}/t{index}", parts,
                       port_writes(transition.actions, {}))
            if transition.call is None:
                if transition.guard is None:
                    blocked = True  # later transitions never execute
                else:
                    negated.append(("not", transition.guard))


def _condition_possible(parts, var_env, port_env, pins):
    """Can the conjunction of *parts* hold under *pins*?  Conservative: yes
    unless some part is definitely false (a ``("not", g)`` part is false
    when g is definitely true)."""
    for part in parts:
        if isinstance(part, tuple):
            interval = eval_interval(part[1], var_env, port_env, pins)
            if is_definitely_true(interval):
                return False
        else:
            interval = eval_interval(part, var_env, port_env, pins)
            if is_definitely_false(interval):
                return False
    return True


def protocol_pass(unit, report, path_base):
    """Run PROTO001–PROTO003 over every service FSM of *unit*."""
    channels = detect_channels(unit)
    if not channels:
        return
    port_env = {name: dtype_interval(port.dtype)
                for name, port in unit.ports.items()}
    for service in unit.services.values():
        fsm = service.fsm
        var_env = {name: dtype_interval(decl.dtype)
                   for name, decl in fsm.variables.items()}
        path = f"{path_base}/service/{service.name}"
        for location, parts, writes in _sites(fsm):
            where = f"{path}/{location}"
            for channel in channels:
                data, strobe = channel["data"], channel["strobe"]
                if data in writes and strobe not in writes:
                    report.add(Diagnostic(
                        "PROTO001", "warning", where,
                        f"writes channel data {data!r} without strobing "
                        f"{strobe!r} in the same action list",
                        data={"channel": channel["prefix"]},
                    ))
                ack = channel["ack"]
                if (ack and channel["avail"] and ack in writes
                        and is_definitely_true(
                            eval_interval(writes[ack], var_env, port_env))
                        and _condition_possible(
                            parts, var_env, port_env, {channel["avail"]: 0})):
                    report.add(Diagnostic(
                        "PROTO002", "error", where,
                        f"raises {ack!r} on a path that does not require the "
                        f"data-available window ({channel['avail']!r} == 1)",
                        data={"channel": channel["prefix"]},
                    ))
                if (channel["full"] and strobe in writes
                        and is_definitely_true(
                            eval_interval(writes[strobe], var_env, port_env))
                        and _condition_possible(
                            parts, var_env, port_env, {channel["full"]: 1})):
                    report.add(Diagnostic(
                        "PROTO003", "error", where,
                        f"may raise {strobe!r} while the channel is full "
                        f"({channel['full']!r} == 1)",
                        data={"channel": channel["prefix"]},
                    ))
