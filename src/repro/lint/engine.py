"""The lint engine: runs every pass over a :class:`SystemModel`.

``lint_model`` is the single entry point used by the CLI, the conformance
kit's pre-flight stage, the sweep/server jobs and the ``validate_model``
compatibility shim.  The legacy-rule passes run first and in exactly the
order the old string-based validator reported problems, so the shim can
reproduce its output byte-for-byte from the diagnostics' ``legacy`` texts.
"""

from repro.core.module import HardwareModule, SoftwareModule
from repro.lint import dataflow, interface, protocol, races
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.intervals import dtype_interval


def _fsm_envs(fsm, ports):
    var_env = {name: dtype_interval(decl.dtype)
               for name, decl in fsm.variables.items()}
    port_env = {name: dtype_interval(port.dtype)
                for name, port in ports.items()}
    return var_env, port_env


def _module_ports(module):
    ports = dict(module.ports)
    if isinstance(module, HardwareModule):
        ports.update(module.internal_signals)
    return ports


def _collect_suppressions(model, extra=()):
    """Suppression entries: engine args are global; entries attached to model
    objects as ``lint_suppress`` are scoped to the object's path."""
    entries = [(entry, "") for entry in extra]
    entries += [(entry, "") for entry in getattr(model, "lint_suppress", ())]
    for module in model.modules.values():
        prefix = f"module/{module.name}"
        entries += [(entry, prefix)
                    for entry in getattr(module, "lint_suppress", ())]
        for fsm in module.behaviours():
            entries += [(entry, f"{prefix}/{fsm.name}")
                        for entry in getattr(fsm, "lint_suppress", ())]
    for unit in model.comm_units.values():
        prefix = f"unit/{unit.name}"
        entries += [(entry, prefix)
                    for entry in getattr(unit, "lint_suppress", ())]
        for service in unit.services.values():
            entries += [(entry, f"{prefix}/service/{service.name}")
                        for entry in getattr(service, "lint_suppress", ())]
            entries += [(entry, f"{prefix}/service/{service.name}")
                        for entry in getattr(service.fsm, "lint_suppress", ())]
        for controller in unit.controllers:
            entries += [(entry, f"{prefix}/controller/{controller.name}")
                        for entry in getattr(controller.fsm, "lint_suppress", ())]
    return entries


def lint_model(model, library=None, platforms=(), disable=(), suppress=(),
               legacy_only=False):
    """Run the analyzer over *model*; returns a :class:`LintReport`.

    *library*/*platforms* enable the view-completeness checks (as in the
    old ``validate_model``).  *disable* silences whole rules; *suppress*
    takes suppression entries (``"RULE"`` / ``"RULE:fragment"``).  With
    *legacy_only* true, only the rules the historical validator covered run
    and no suppression filtering is applied — the strict mode the
    ``validate_model`` shim uses.
    """
    report = LintReport(target=model.name)

    # --- legacy-ordered passes (behaviours, units, bindings, views) --------
    for module in model.modules.values():
        for fsm in module.behaviours():
            dataflow.structural_pass(
                fsm, f"module/{module.name}/{fsm.name}", report,
                legacy_prefix=f"module {module.name}/{fsm.name}: ",
            )
        if isinstance(module, SoftwareModule) and len(module.behaviours()) != 1:
            message = "software modules have exactly one FSM"
            report.add(Diagnostic(
                "FSM006", "error", f"module/{module.name}", message,
                legacy=f"module {module.name}: {message}",
            ))
    for unit in model.comm_units.values():
        interface.unit_port_pass(unit, report)
        for service in unit.services.values():
            dataflow.structural_pass(
                service.fsm, f"unit/{unit.name}/service/{service.name}", report,
                legacy_prefix=(f"communication unit {unit.name}, "
                               f"service {service.name}: "),
            )
        for controller in unit.controllers:
            dataflow.structural_pass(
                controller.fsm, f"unit/{unit.name}/controller/{controller.name}",
                report,
                legacy_prefix=(f"communication unit {unit.name}, "
                               f"controller {controller.name}: "),
            )
    interface.binding_pass(model, report)
    if library is not None:
        interface.view_pass(model, library, platforms, report)

    if legacy_only:
        return report

    # --- extended passes ---------------------------------------------------
    for module in model.modules.values():
        ports = _module_ports(module)
        for fsm in module.behaviours():
            path = f"module/{module.name}/{fsm.name}"
            var_env, port_env = _fsm_envs(fsm, ports)
            dataflow.dataflow_passes(fsm, path, report,
                                     var_env=var_env, port_env=port_env)
            interface.call_pass(model, module, fsm, path, report,
                                var_env=var_env, port_env=port_env)
            interface.port_write_pass(fsm, path, report, ports,
                                      var_env=var_env, port_env=port_env)
    for unit in model.comm_units.values():
        for service in unit.services.values():
            path = f"unit/{unit.name}/service/{service.name}"
            var_env, port_env = _fsm_envs(service.fsm, unit.ports)
            dataflow.dataflow_passes(service.fsm, path, report,
                                     pre_assigned=service.param_names,
                                     var_env=var_env, port_env=port_env)
            interface.port_write_pass(service.fsm, path, report, unit.ports,
                                      var_env=var_env, port_env=port_env)
        for controller in unit.controllers:
            path = f"unit/{unit.name}/controller/{controller.name}"
            var_env, port_env = _fsm_envs(controller.fsm, unit.ports)
            dataflow.dataflow_passes(controller.fsm, path, report,
                                     var_env=var_env, port_env=port_env)
            interface.port_write_pass(controller.fsm, path, report, unit.ports,
                                      var_env=var_env, port_env=port_env)
        protocol.protocol_pass(unit, report, f"unit/{unit.name}")
    races.race_pass(model, report)

    entries = _collect_suppressions(model, suppress)
    entries += [(rule, "") for rule in disable]
    report.apply_suppressions(entries)
    return report
