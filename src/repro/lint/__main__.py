"""Command-line front end of the static analyzer.

Usage::

    python -m repro.lint                     # lint the shipped applications
    python -m repro.lint --app motor         # one application
    python -m repro.lint --seed 0 --seed 1   # generated conformance systems
    python -m repro.lint --json              # machine-readable report
    python -m repro.lint --fail-on warning   # stricter gate (default: error)
    python -m repro.lint --disable DF002     # silence a rule everywhere
    python -m repro.lint --rules             # print the rule catalog
    python -m repro.lint --selfcheck         # mutants + corpus self-test

Exit status is 0 when every linted target stays below the ``--fail-on``
threshold (and the selfcheck, when requested, passes), 1 otherwise.
"""

import argparse
import json
import sys

from repro.lint.engine import lint_model
from repro.lint.rules import RULES, known_rule
from repro.lint.selfcheck import run_selfcheck

APPS = ("motor", "two-axis")


def _build_app(name):
    if name == "motor":
        from repro.apps.motor_controller.system import build_system
        return build_system()[0]
    from repro.apps.motor_controller.two_axis import build_two_axis_system
    return build_two_axis_system()[0]


def _targets(args):
    """Yield ``(label, model)`` for every requested lint target."""
    apps = list(args.app or ())
    seeds = list(args.seed or ())
    if not apps and not seeds:
        apps = list(APPS)
    for name in apps:
        yield f"app:{name}", _build_app(name)
    if seeds:
        from repro.testkit.models import generate_system
        for seed in seeds:
            yield f"seed:{seed}", generate_system(seed).build_model()


def _print_rules():
    for rule in RULES:
        origin = "legacy" if rule.legacy else "extended"
        print(f"{rule.rule:<9} {rule.severity:<8} {origin:<9} {rule.title}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="static model/IR analyzer (dataflow, races, interfaces, "
                    "protocol discipline)",
    )
    parser.add_argument("--app", action="append", choices=APPS,
                        help="lint a shipped application (repeatable)")
    parser.add_argument("--seed", action="append", type=int, metavar="N",
                        help="lint the generated conformance system of "
                             "seed N (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON report per target")
    parser.add_argument("--fail-on", choices=("warning", "error"),
                        default="error",
                        help="lowest severity that fails the run "
                             "(default: error)")
    parser.add_argument("--disable", action="append", metavar="RULE",
                        default=[],
                        help="disable a rule by id (repeatable)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the analyzer self-test (mutants must trip "
                             "their rules, corpus must be clean)")
    args = parser.parse_args(argv)

    if args.rules:
        _print_rules()
        return 0

    for rule in args.disable:
        if not known_rule(rule):
            parser.error(f"unknown rule {rule!r} (see --rules)")

    if args.selfcheck:
        problems = run_selfcheck(log=print)
        for problem in problems:
            print(f"selfcheck: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("selfcheck: OK")
        return 0

    failed = False
    reports = []
    for label, model in _targets(args):
        report = lint_model(model, disable=args.disable)
        report.target = label
        reports.append(report)
        failed = failed or report.fails(args.fail_on)
    if args.json:
        print(json.dumps([report.as_dict() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.render_text())
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
