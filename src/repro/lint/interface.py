"""Interface checks: bindings, service-call shapes and value ranges.

Legacy rules (IF001/IF002/IF008 plus the view checks VIEW001/VIEW002)
replicate what ``core/validation.py`` reported, with byte-identical legacy
strings.  The extended rules (IF003–IF007) use the declared data types and
interval evaluation; the width rules only fire on *definite* violations —
the expression's value set and the target's range are disjoint, so no run
can ever produce a legal value.  "Might overflow" (overlapping ranges) is
deliberately not reported: declared ranges are coarse and such findings
would be noise.
"""

from repro.ir.stmt import If, PortWrite
from repro.lint.diagnostics import Diagnostic
from repro.lint.intervals import dtype_interval, eval_interval, is_disjoint


def binding_pass(model, report):
    """IF001 (unbound service) and IF002 (unused binding), legacy order."""
    for module in model.modules.values():
        for service_name in module.services_used():
            if model.binding_for(module.name, service_name) is None:
                report.add(Diagnostic(
                    "IF001", "error", f"module/{module.name}",
                    f"service {service_name!r} is called but not bound to any "
                    "communication unit",
                    data={"service": service_name},
                    legacy=(f"module {module.name}: service {service_name!r} is "
                            "called but not bound to any communication unit"),
                ))
    for binding in model.bindings:
        module = model.modules[binding.module]
        if binding.service not in module.services_used():
            report.add(Diagnostic(
                "IF002", "warning",
                f"binding/{binding.module}.{binding.service}",
                f"module {binding.module} never calls {binding.service!r}",
                data={"service": binding.service, "unit": binding.unit},
                legacy=(f"binding {binding!r}: module {binding.module} never "
                        f"calls {binding.service!r}"),
            ))


def unit_port_pass(unit, report):
    """IF008: services/controllers touching undeclared unit ports."""
    known = set(unit.ports)
    for service in unit.services.values():
        for port_name in service.ports_used():
            if port_name not in known:
                message = (f"service {service.name!r} uses undeclared port "
                           f"{port_name!r}")
                report.add(Diagnostic(
                    "IF008", "error", f"unit/{unit.name}/service/{service.name}",
                    message,
                    data={"port": port_name},
                    legacy=f"communication unit {unit.name}: {message}",
                ))
    for controller in unit.controllers:
        controller_ports = set(controller.fsm.read_ports()) | set(
            controller.fsm.written_ports()
        )
        for port_name in sorted(controller_ports - known):
            message = (f"controller {controller.name!r} uses undeclared port "
                       f"{port_name!r}")
            report.add(Diagnostic(
                "IF008", "error", f"unit/{unit.name}/controller/{controller.name}",
                message,
                data={"port": port_name},
                legacy=f"communication unit {unit.name}: {message}",
            ))


def view_pass(model, library, platforms, report):
    """VIEW001/VIEW002: the view-completeness checks of the old validator."""
    from repro.core.views import MultiViewLibrary, ViewKind

    if not isinstance(library, MultiViewLibrary):
        message = (f"view library must be a MultiViewLibrary, got "
                   f"{type(library).__name__}")
        report.add(Diagnostic("VIEW002", "error", "library", message,
                              legacy=message))
        return
    for module in model.modules.values():
        for service_name in module.services_used():
            binding = model.binding_for(module.name, service_name)
            if binding is None:
                continue  # already reported by IF001
            where = f"service/{service_name}"
            if module.kind == "software":
                if not library.has(service_name, ViewKind.SW_SIM):
                    message = (f"service {service_name!r}: missing SW simulation "
                               f"view (needed by software module {module.name})")
                    report.add(Diagnostic("VIEW001", "error", where, message,
                                          legacy=message))
                for platform in platforms:
                    if not library.has(service_name, ViewKind.SW_SYNTH, platform):
                        message = (
                            f"service {service_name!r}: missing SW synthesis view "
                            f"for platform {platform!r} (needed by software module "
                            f"{module.name})"
                        )
                        report.add(Diagnostic("VIEW001", "error", where, message,
                                              legacy=message))
            else:
                if not library.has(service_name, ViewKind.HW):
                    message = (f"service {service_name!r}: missing HW view "
                               f"(needed by hardware module {module.name})")
                    report.add(Diagnostic("VIEW001", "error", where, message,
                                          legacy=message))


# ------------------------------------------------------------- IF003..IF007

def iter_write_sites(fsm):
    """Yield ``(location, stmts)`` per action list, flattening If branches."""

    def flatten(stmts):
        for stmt in stmts:
            if isinstance(stmt, If):
                yield from flatten(stmt.then)
                yield from flatten(stmt.orelse)
            else:
                yield stmt

    for state in fsm.iter_states():
        yield state.name, list(flatten(state.actions))
        for index, transition in enumerate(state.transitions):
            yield f"{state.name}/t{index}", list(flatten(transition.actions))


def call_pass(model, module, fsm, path, report, var_env=None, port_env=None):
    """IF003 (arity), IF004 (store validity), IF006/IF007 (definite width
    mismatches on arguments and stored results)."""
    for state in fsm.iter_states():
        for index, transition in enumerate(state.transitions):
            call = transition.call
            if call is None:
                continue
            binding = model.binding_for(module.name, call.service)
            if binding is None:
                continue  # IF001 already fired
            service = model.comm_units[binding.unit].services[call.service]
            where = f"{path}/{state.name}/t{index}"
            if len(call.args) != len(service.params):
                report.add(Diagnostic(
                    "IF003", "error", where,
                    f"service {call.service!r} called with {len(call.args)} "
                    f"argument(s), expected {len(service.params)}",
                    data={"service": call.service, "given": len(call.args),
                          "expected": len(service.params)},
                ))
            else:
                for position, (arg, param) in enumerate(
                        zip(call.args, service.params)):
                    arg_interval = eval_interval(arg, var_env, port_env)
                    bounds = dtype_interval(param.dtype)
                    if is_disjoint(arg_interval, bounds):
                        report.add(Diagnostic(
                            "IF006", "error", where,
                            f"argument {position} of {call.service!r} can never "
                            f"be a legal value for parameter {param.name!r} "
                            f"(value range {arg_interval}, parameter range "
                            f"{bounds})",
                            data={"service": call.service, "param": param.name},
                        ))
            if call.store:
                if service.returns is None:
                    report.add(Diagnostic(
                        "IF004", "error", where,
                        f"stores the result of {call.service!r}, which returns "
                        "nothing",
                        data={"service": call.service, "store": call.store},
                    ))
                elif call.store in fsm.variables:
                    store_bounds = dtype_interval(fsm.variables[call.store].dtype)
                    return_bounds = dtype_interval(service.returns)
                    if (store_bounds is not None and return_bounds is not None
                            and not (return_bounds[0] >= store_bounds[0]
                                     and return_bounds[1] <= store_bounds[1])):
                        report.add(Diagnostic(
                            "IF007", "warning", where,
                            f"result of {call.service!r} (range {return_bounds}) "
                            f"may not fit variable {call.store!r} (range "
                            f"{store_bounds})",
                            data={"service": call.service, "store": call.store},
                        ))


def port_write_pass(fsm, path, report, ports, var_env=None, port_env=None):
    """IF005: port writes whose value range is disjoint from the port's."""
    for location, stmts in iter_write_sites(fsm):
        for stmt in stmts:
            if not isinstance(stmt, PortWrite):
                continue
            port = ports.get(stmt.port_name)
            if port is None:
                continue  # IF008's business (unit) or a module-external port
            bounds = dtype_interval(port.dtype)
            interval = eval_interval(stmt.expr, var_env, port_env)
            if is_disjoint(interval, bounds):
                report.add(Diagnostic(
                    "IF005", "error", f"{path}/{location}",
                    f"write to port {stmt.port_name!r} can never be a legal "
                    f"value (value range {interval}, port range {bounds})",
                    data={"port": stmt.port_name},
                ))
