"""Static delta-cycle write-race detection (RACE001).

The co-simulation backplane schedules every write as a zero-delay
transaction; two processes writing the same signal in the same delta cycle
silently resolve last-write-wins (the class of bug PR 6's FIFO
stale-acknowledge fix had to root-cause dynamically).  This pass builds the
*write-set* of every execution context that can run in the same delta:

* every communication-unit controller (stepped by the clocked controller
  process),
* every process FSM of a hardware module (stepped on the clock edge) —
  including the ports written by the services it calls, attributed through
  the model's bindings,
* every software module FSM (stepped by the activation process) — again
  including its bound services' write-sets.

Contexts fall into two delta groups that never share a delta cycle:
``clocked`` (controllers + hardware processes, which run in the clock-edge
delta) and ``activation`` (software executors, which wake from timeouts at
the start of a time point).  A signal statically writable by two distinct
contexts of the same group is flagged.

The dynamic cross-check is ``Simulator(detect_races=True)`` (both kernels):
it records *actual* same-delta multi-writer updates at kernel-process
granularity, which is coarser than these contexts (one kernel process steps
every FSM of a hardware module), so the static findings are a superset of
anything the dynamic mode can observe — the property the conformance tests
pin.
"""

from repro.lint.diagnostics import Diagnostic


def signal_name(key):
    """Simulation signal name of a write-set key (matches CosimSession)."""
    _kind, owner, port = key
    return f"{owner}_{port}"


def collect_write_contexts(model):
    """Return one ``{path, group, writes}`` dict per execution context.

    ``writes`` is a set of ``(kind, owner, port)`` keys — ``("unit", name,
    port)`` for communication-unit ports, ``("module", name, port)`` for
    module ports and internal signals.
    """
    service_writes = {}
    for unit_name, unit in model.comm_units.items():
        for service in unit.services.values():
            service_writes[(unit_name, service.name)] = tuple(
                service.fsm.written_ports()
            )

    def called_service_writes(module_name, fsm):
        targets = set()
        for service_name in fsm.service_calls():
            binding = model.binding_for(module_name, service_name)
            if binding is None:
                continue  # IF001's business
            for port in service_writes.get((binding.unit, service_name), ()):
                targets.add(("unit", binding.unit, port))
        return targets

    contexts = []
    for unit_name, unit in model.comm_units.items():
        for controller in unit.controllers:
            contexts.append({
                "path": f"unit/{unit_name}/controller/{controller.name}",
                "group": "clocked",
                "writes": {("unit", unit_name, port)
                           for port in controller.fsm.written_ports()},
            })
    for module in model.hardware_modules():
        for fsm in module.behaviours():
            writes = {("module", module.name, port)
                      for port in fsm.written_ports()}
            writes |= called_service_writes(module.name, fsm)
            contexts.append({
                "path": f"module/{module.name}/process/{fsm.name}",
                "group": "clocked",
                "writes": writes,
            })
    for module in model.software_modules():
        writes = {("module", module.name, port)
                  for port in module.fsm.written_ports()}
        writes |= called_service_writes(module.name, module.fsm)
        contexts.append({
            "path": f"module/{module.name}",
            "group": "activation",
            "writes": writes,
        })
    return contexts


def static_race_signals(model):
    """Signal names flagged by the race pass (the static side of the
    static-superset-of-dynamic conformance property)."""
    names = set()
    for key, _group, _writers in _races(model):
        names.add(signal_name(key))
    return names


def _races(model):
    by_signal = {}
    for context in collect_write_contexts(model):
        for key in context["writes"]:
            by_signal.setdefault(key, []).append(context)
    found = []
    for key in sorted(by_signal):
        for group in ("clocked", "activation"):
            writers = [c["path"] for c in by_signal[key] if c["group"] == group]
            if len(writers) >= 2:
                found.append((key, group, writers))
    return found


def race_pass(model, report):
    """RACE001: one diagnostic per signal with >= 2 same-delta writers."""
    for key, group, writers in _races(model):
        name = signal_name(key)
        report.add(Diagnostic(
            "RACE001", "error", f"signal/{name}",
            f"signal {name!r} can be written by {len(writers)} processes in "
            f"the same delta cycle: {', '.join(writers)}",
            data={"signal": name, "group": group, "writers": writers},
        ))
