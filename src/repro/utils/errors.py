"""Exception hierarchy used across the library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ModelError(ReproError):
    """The system model is structurally malformed (bad port, duplicate name...)."""


class ValidationError(ModelError):
    """Model validation failed; carries the list of individual problems.

    *problems* are the human-readable strings the validator has always
    reported; *diagnostics* optionally carries the structured
    :class:`repro.lint.Diagnostic` objects behind them (empty for errors
    raised from plain string lists).  ``str(exc)`` is unchanged.
    """

    def __init__(self, problems, diagnostics=()):
        self.problems = list(problems)
        self.diagnostics = list(diagnostics)
        joined = "; ".join(self.problems) if self.problems else "unknown problem"
        super().__init__(f"model validation failed: {joined}")


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal condition."""


class SynthesisError(ReproError):
    """Co-synthesis could not map the model onto the requested target."""


class ViewError(ReproError):
    """A required view of a communication service is missing or inconsistent."""
