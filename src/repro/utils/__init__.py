"""Shared utilities: error types, identifier helpers and structured logging."""

from repro.utils.errors import (
    ReproError,
    ModelError,
    SimulationError,
    SynthesisError,
    ViewError,
    ValidationError,
)
from repro.utils.ids import check_identifier, unique_name
from repro.utils.text import indent_block, format_table

__all__ = [
    "ReproError",
    "ModelError",
    "SimulationError",
    "SynthesisError",
    "ViewError",
    "ValidationError",
    "check_identifier",
    "unique_name",
    "indent_block",
    "format_table",
]
