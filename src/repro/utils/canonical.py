"""Canonical JSON rendering and content digests.

Content addressing — the sweep cache keying synthesis artefacts by the
``as_dict()`` form of their inputs, job and result digests in sweep
reports — needs one byte-exact rendering per value.  ``canonical_json``
fixes separators, key order and ASCII escaping, so equal dicts digest
equally on every platform and Python version; ``content_digest`` is the
sha256 of that rendering.
"""

import hashlib
import json


def canonical_json(value):
    """The unique, byte-stable JSON rendering of *value*."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def content_digest(value):
    """sha256 hex digest of :func:`canonical_json` of *value*."""
    return hashlib.sha256(canonical_json(value).encode("ascii")).hexdigest()
