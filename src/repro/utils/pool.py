"""Shared multiprocessing worker-pool helper.

Both batch layers of the project — DSE candidate evaluation
(:mod:`repro.dse.parallel`) and the scenario-sweep service
(:mod:`repro.sweep.service`) — fan work out over a process pool with the
same requirements:

* prefer the ``fork`` start method, so custom platforms and models
  registered in the parent process stay visible to workers without being
  importable,
* preserve submission order (``Pool.map``), so a parallel run merges into
  a report **byte-identical** to a serial run — the worker count may only
  change wall-clock time,
* auto-size chunks so the pool is neither starved nor dominated by one
  straggler chunk.

This module owns that shape once; consumers supply only the work function
and, optionally, a per-worker initializer.
"""

import multiprocessing


class WorkerPool:
    """A fork-preferring, order-preserving process pool.

    Parameters
    ----------
    workers:
        Number of worker processes (must be >= 1).
    initializer, initargs:
        Optional per-worker setup, exactly as for ``multiprocessing.Pool``.

    Use as a context manager; :meth:`map` blocks until every item is done
    and returns results in submission order.
    """

    def __init__(self, workers, initializer=None, initargs=()):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers,
            initializer=initializer,
            initargs=initargs,
        )

    def map(self, func, items, chunksize=None):
        """Run ``func`` over *items* on the pool, in submission order."""
        items = list(items)
        if not items:
            return []
        if chunksize is None:
            chunksize = max(1, len(items) // (4 * self.workers))
        return self._pool.map(func, items, chunksize=chunksize)

    def close(self):
        self._pool.close()
        self._pool.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
