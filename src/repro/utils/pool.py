"""Shared multiprocessing worker-pool helper.

Both batch layers of the project — DSE candidate evaluation
(:mod:`repro.dse.parallel`) and the scenario-sweep service
(:mod:`repro.sweep.service`) — fan work out over a process pool with the
same requirements:

* prefer the ``fork`` start method, so custom platforms and models
  registered in the parent process stay visible to workers without being
  importable,
* preserve submission order, so a parallel run merges into a report
  **byte-identical** to a serial run — the worker count may only change
  wall-clock time,
* auto-size chunks so the pool is neither starved nor dominated by one
  straggler chunk,
* surface a worker that dies mid-batch (OOM kill, hard crash) as a
  :class:`PoolError` naming the first unfinished item, instead of the
  bare ``multiprocessing`` behaviour — a silent hang, because the pool
  replaces the dead process but the task it carried is simply lost.

This module owns that shape once; consumers supply only the work function
and, optionally, a per-worker initializer.
"""

import multiprocessing

from repro.obs import TELEMETRY
from repro.utils.errors import ReproError


def _run_chunk(payload):
    """Worker entry for one chunk: ``(func, items) -> [func(i) for i]``.

    Chunking is done here, by hand, because ``Pool.imap`` only returns the
    timeout-capable ``IMapIterator`` for ``chunksize == 1`` — larger chunk
    sizes hand back a plain generator, which the liveness-polling loop in
    :meth:`WorkerPool.map` could not poll.
    """
    func, chunk = payload
    return [func(item) for item in chunk]


class PoolError(ReproError):
    """A worker process died mid-batch; carries the first unfinished index."""

    def __init__(self, message, item_index=None):
        super().__init__(message)
        self.item_index = item_index


class WorkerPool:
    """A fork-preferring, order-preserving process pool.

    Parameters
    ----------
    workers:
        Number of worker processes (must be >= 1).
    initializer, initargs:
        Optional per-worker setup, exactly as for ``multiprocessing.Pool``.

    Use as a context manager; :meth:`map` blocks until every item is done
    and returns results in submission order.  A worker dying mid-``map``
    raises :class:`PoolError`; leaving the ``with`` block on any pending
    exception terminates the pool instead of joining it (a lost task
    never completes, so an orderly ``close``/``join`` would hang).
    """

    #: Seconds between liveness polls while waiting on in-flight results.
    _POLL_INTERVAL = 0.05

    def __init__(self, workers, initializer=None, initargs=()):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._broken = False
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers,
            initializer=initializer,
            initargs=initargs,
        )

    # ---------------------------------------------------------------- running

    def _worker_pids(self):
        return {process.pid for process in self._pool._pool}

    def map(self, func, items, chunksize=None):
        """Run ``func`` over *items* on the pool, in submission order.

        Results stream back through an ordered ``imap`` so progress is
        observable.  A worker process disappearing mid-batch (its PID
        leaves the pool — ``multiprocessing`` transparently replaces
        crashed workers, abandoning whatever they carried) breaks the
        whole batch: already-delivered results stay delivered, the pool
        is marked broken, and a :class:`PoolError` names the first item
        whose result never arrived.  This mirrors
        ``concurrent.futures.BrokenProcessPool`` semantics — a plain
        ``Pool.map`` would instead hang forever on the lost task.
        """
        if self._broken:
            raise PoolError("worker pool is broken (a worker died earlier)")
        items = list(items)
        if not items:
            return []
        if chunksize is None:
            chunksize = max(1, len(items) // (4 * self.workers))
        chunks = [(func, items[start:start + chunksize])
                  for start in range(0, len(items), chunksize)]
        with TELEMETRY.span("pool.map", cat="pool", items=len(items),
                            chunks=len(chunks), workers=self.workers):
            results = self._map_chunks(chunks, len(items))
        if TELEMETRY.enabled:
            TELEMETRY.metrics.counter(
                "repro_pool_items_total",
                help="Items completed through WorkerPool.map.",
            ).inc(len(results))
        return results

    def _map_chunks(self, chunks, total):
        known_pids = self._worker_pids()
        iterator = self._pool.imap(_run_chunk, chunks, chunksize=1)
        results = []
        while len(results) < total:
            try:
                results.extend(iterator.next(timeout=self._POLL_INTERVAL))
                continue
            except multiprocessing.TimeoutError:
                pass
            if self._broken:
                # Another thread's map broke the pool (or terminate() ran);
                # our in-flight work died with the workers.
                raise PoolError(
                    f"worker pool broke mid-map; item {len(results)} of "
                    f"{total} never finished",
                    item_index=len(results),
                )
            dead = known_pids - self._worker_pids()
            if dead:
                self._broken = True
                if TELEMETRY.enabled:
                    TELEMETRY.metrics.counter(
                        "repro_pool_worker_deaths_total",
                        help="Worker processes lost mid-map.",
                    ).inc(len(dead))
                raise PoolError(
                    f"worker process(es) {sorted(dead)} died mid-map; "
                    f"item {len(results)} of {total} never finished "
                    f"({len(results)} results were already completed)",
                    item_index=len(results),
                )
        return results

    # ---------------------------------------------------------------- closing

    def terminate(self):
        """Kill the workers immediately (pending work is abandoned).

        Marks the pool broken first, so maps concurrently blocked in other
        threads raise :class:`PoolError` instead of waiting forever on
        results that died with the workers.
        """
        self._broken = True
        self._pool.terminate()
        self._pool.join()

    def close(self):
        if self._broken:
            # A lost task never completes; join() would wait forever.
            self.terminate()
            return
        self._pool.close()
        self._pool.join()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        if exc_type is not None:
            # An exception is unwinding through the batch: abandon the
            # in-flight work rather than joining a pool that may never
            # drain (the exception may *be* a lost-task PoolError).
            self.terminate()
        else:
            self.close()
        return False
