"""Identifier helpers.

The generated C and VHDL views must use names that are legal in both
languages, so identifiers accepted by the model are restricted to the common
subset: a letter followed by letters, digits or underscores, not ending with
an underscore and never containing two consecutive underscores (a VHDL
restriction).
"""

import itertools
import re

from repro.utils.errors import ModelError

_IDENTIFIER_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")

# Words reserved in either VHDL or C; the check is deliberately conservative.
_RESERVED = {
    "begin", "end", "entity", "architecture", "process", "signal", "case",
    "when", "if", "then", "else", "elsif", "procedure", "function", "return",
    "int", "char", "float", "double", "void", "switch", "break", "default",
    "while", "for", "do", "struct", "typedef", "enum", "static", "const",
    "in", "out", "inout", "is", "of", "type", "variable", "wait", "port",
}


def check_identifier(name, what="identifier"):
    """Validate *name* as a C/VHDL-compatible identifier and return it.

    Raises :class:`ModelError` when the name is unusable in the generated
    views.
    """
    if not isinstance(name, str) or not name:
        raise ModelError(f"{what} must be a non-empty string, got {name!r}")
    if not _IDENTIFIER_RE.match(name):
        raise ModelError(f"{what} {name!r} is not a valid C/VHDL identifier")
    if "__" in name or name.endswith("_"):
        raise ModelError(f"{what} {name!r} is not portable to VHDL (underscore rule)")
    if name.lower() in _RESERVED:
        raise ModelError(f"{what} {name!r} collides with a C/VHDL reserved word")
    return name


class unique_name:
    """Callable factory producing unique identifiers with a common prefix.

    >>> fresh = unique_name("tmp")
    >>> fresh(), fresh()
    ('tmp1', 'tmp2')
    """

    def __init__(self, prefix="n"):
        check_identifier(prefix, "prefix")
        self._prefix = prefix
        self._counter = itertools.count(1)

    def __call__(self):
        return f"{self._prefix}{next(self._counter)}"
