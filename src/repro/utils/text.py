"""Small text-formatting helpers shared by the code emitters and reports."""


def indent_block(text, levels=1, width=2):
    """Indent every non-empty line of *text* by ``levels * width`` spaces."""
    pad = " " * (levels * width)
    lines = text.splitlines()
    return "\n".join(pad + line if line.strip() else line for line in lines)


def format_table(headers, rows):
    """Render a simple monospace table used by synthesis and benchmark reports.

    *headers* is a sequence of column titles; *rows* a sequence of sequences.
    Every cell is converted with ``str``.
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells):
        padded = []
        for index, width in enumerate(widths):
            cell = cells[index] if index < len(cells) else ""
            padded.append(cell.ljust(width))
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    out = [line(headers), separator]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
