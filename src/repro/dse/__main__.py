"""Command-line entry of the partition explorer.

Usage::

    python -m repro.dse                          # testkit system 0, auto mode
    python -m repro.dse --quick                  # < 30 s exhaustive smoke run
    python -m repro.dse --model motor            # the paper's motor controller
    python -m repro.dse --seed 7 --networks 9 --mode heuristic --workers 4
    python -m repro.dse --validate --out report.json

Exit status is non-zero when no feasible candidate exists or a validated
front member fails co-simulation.
"""

import argparse
import sys
import time

from repro.dse.explorer import DesignSpaceExplorer
from repro.utils.errors import ReproError


def _parse_pins(parser, pairs):
    pins = {}
    for pair in pairs or ():
        name, _, side = pair.partition("=")
        if side not in ("sw", "hw"):
            parser.error(f"--pin expects MODULE=sw or MODULE=hw, got {pair!r}")
        pins[name] = side
    return pins


def _build_source(args):
    """Resolve the model source:
    (model, cosim_params, expectations, environment, pins)."""
    if args.model == "motor":
        from repro.apps.motor_controller.system import (
            build_system,
            make_motor_environment,
        )

        model, config = build_system()
        return model, {}, None, make_motor_environment(config), {}
    from repro.testkit.models import generate_system

    system = generate_system(args.seed, networks=args.networks)
    # Relays must stay in software for the co-simulation check to be
    # meaningful; without --validate the whole space stays open.
    pins = {name: "sw" for name in system.sw_only} if args.validate else {}
    return (system.build_model(), system.cosim_params, system.expectations,
            None, pins)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="automated hw/sw partition explorer",
    )
    parser.add_argument("--model", choices=("testkit", "motor"),
                        default="testkit",
                        help="model source (default: testkit generator)")
    parser.add_argument("--seed", type=int, default=0,
                        help="testkit generator seed (default 0)")
    parser.add_argument("--networks", type=int, default=None,
                        help="testkit networks per system (default: random 1-3)")
    parser.add_argument("--platforms", nargs="+", metavar="NAME",
                        help="platforms to sweep (default: all registered)")
    parser.add_argument("--mode", choices=("auto", "exhaustive", "heuristic"),
                        default="auto", help="search mode (default auto)")
    parser.add_argument("--workers", type=int, default=1,
                        help="evaluation worker processes (default 1: serial)")
    parser.add_argument("--search-seed", type=int, default=0,
                        help="heuristic search seed (default 0)")
    parser.add_argument("--restarts", type=int, default=3,
                        help="heuristic restarts per platform (default 3)")
    parser.add_argument("--max-rounds", type=int, default=20,
                        help="greedy rounds per restart (default 20)")
    parser.add_argument("--pin", action="append", metavar="MODULE=SIDE",
                        help="pin a module to sw or hw (repeatable)")
    parser.add_argument("--validate", action="store_true",
                        help="co-simulate every Pareto-front candidate")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSON report to FILE")
    parser.add_argument("--full-scores", action="store_true",
                        help="include every evaluated score in the report")
    parser.add_argument("--quick", action="store_true",
                        help="small exhaustive smoke run (< 30 s)")
    args = parser.parse_args(argv)

    if args.quick:
        # Defaults only — explicit --model/--mode/--networks still win.
        if args.mode == "auto":
            args.mode = "exhaustive"
        if args.model == "testkit":
            args.validate = True
            if args.networks is None:
                args.networks = 2

    if args.model == "motor" and (args.seed != 0 or args.networks is not None):
        parser.error("--seed/--networks only apply to --model testkit")

    explicit_pins = _parse_pins(parser, args.pin)
    try:
        model, cosim_params, expectations, environment, pins = \
            _build_source(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pins.update(explicit_pins)

    started = time.perf_counter()
    try:
        explorer = DesignSpaceExplorer(
            model, platforms=args.platforms, pins=pins,
            cosim_params=cosim_params, expectations=expectations,
            environment=environment,
        )
        report = explorer.explore(
            mode=args.mode, seed=args.search_seed, workers=args.workers,
            restarts=args.restarts, max_rounds=args.max_rounds,
            validate=args.validate,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    print(report.summary())
    stats = explorer.evaluator.stats
    if args.workers <= 1:
        print(f"(synthesis calls: {stats['synthesis_calls']}, "
              f"cache hits: {stats['cache_hits']})")
    print(f"({elapsed:.1f} s wall clock, {args.workers} worker(s))")

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json(include_scores=args.full_scores))
            handle.write("\n")
        print(f"report written to {args.out}")

    if not report.feasible:
        print("no feasible candidate found", file=sys.stderr)
        return 1
    if report.validation is not None:
        failed = [item for item in report.validation if not item["ok"]]
        if failed:
            for item in failed:
                for problem in item["problems"]:
                    print(f"validation: {item['candidate']}: {problem}",
                          file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
