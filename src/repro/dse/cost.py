"""Static candidate cost model with memoized per-module synthesis.

Evaluating a candidate must be orders of magnitude cheaper than running the
full :class:`~repro.cosyn.flow.CosynthesisFlow`, or sweeping ``2^n``
placements is hopeless.  Two properties make that possible:

* a module's **software metrics** depend only on its FSM, the service views
  it calls and the platform timing model — not on where the other modules
  sit — so they are memoized per ``(module, "sw", platform)``,
* a module's **hardware area/timing estimate** (the HLS front half:
  DFG → schedule → allocate → FSMD → estimate) is device-family-wide, so it
  is memoized once per module (``(module, "hw", None)``) and shared across
  every platform of the sweep.

The per-candidate work that remains is pure aggregation: summing cached
module costs, sizing the address map, pricing the SW/HW boundary traffic
(:func:`repro.analysis.metrics.static_boundary_traffic`) and applying the
same constraint checks :class:`CosynthesisFlow` enforces (device fit, clock
vs. bus tracking, bus address window).
"""

import dataclasses

from repro.analysis.metrics import static_boundary_traffic
from repro.core.module import HardwareModule
from repro.cosyn.flow import (
    check_address_window,
    check_bus_tracking,
    check_device_fit,
)
from repro.cosyn.hls.estimate import estimate_module
from repro.cosyn.hw_synthesis import achievable_clock_ns, build_process_fsmd
from repro.cosyn.sw_synthesis import estimate_software_metrics
from repro.dse.space import (
    Candidate,
    convertible_to_software,
    software_conversion_error,
)
from repro.platforms import available_platforms, get_platform
from repro.utils.errors import SynthesisError


@dataclasses.dataclass(frozen=True)
class CandidateScore:
    """Static cost-model outcome of one candidate.

    Objectives (all minimized) are ``(area_clbs, latency_ns, sw_load_ns)``:
    FPGA area, worst per-activation end-to-end time (the slower of the worst
    software activation and the hardware clock, plus one round of boundary
    traffic) and total software load (summed worst activation times — the
    processor-saturation proxy).
    """

    candidate: Candidate
    feasible: bool
    reasons: tuple
    area_clbs: int
    flip_flops: int
    clock_ns: float
    latency_ns: float
    sw_load_ns: float
    bus_ns: float
    address_count: int

    def objectives(self):
        return (self.area_clbs, self.latency_ns, self.sw_load_ns)

    def as_dict(self):
        return {
            "platform": self.candidate.platform,
            "hw_modules": list(self.candidate.hw_modules),
            "feasible": self.feasible,
            "reasons": list(self.reasons),
            "area_clbs": self.area_clbs,
            "flip_flops": self.flip_flops,
            "clock_ns": round(self.clock_ns, 1),
            "latency_ns": round(self.latency_ns, 1),
            "sw_load_ns": round(self.sw_load_ns, 1),
            "bus_ns": round(self.bus_ns, 1),
            "address_count": self.address_count,
        }


def build_hw_fsmds(module, width=16):
    """HLS front half (DFG → schedule → allocate → FSMD) for each process."""
    return [build_process_fsmd(fsm, width=width)[0]
            for fsm in module.behaviours()]


class CandidateEvaluator:
    """Scores candidates against the static cost model, with memoization.

    ``stats`` counts the cache behaviour: ``synthesis_calls`` is the number
    of real per-module synthesis estimates performed, ``cache_hits`` the
    number of requests served from the memo — the evidence that shared work
    across candidates is done once.
    """

    def __init__(self, model, platform_names=None, width=16):
        self.model = model
        names = (list(platform_names) if platform_names is not None
                 else available_platforms())
        self.platforms = {name: get_platform(name) for name in names}
        self.width = width
        self.stats = {"synthesis_calls": 0, "cache_hits": 0}
        self._cache = {}
        # Placement-independent per-module data, resolved once so evaluate()
        # is pure aggregation: the service views a module calls and the
        # units it reaches (one binding traversal), plus the
        # boundary-traffic words it contributes when placed in software
        # (aggregated from the analysis layer's static traffic model).
        self._services = {}
        self._module_units = {}
        for name, module in model.modules.items():
            services = []
            unit_names = []
            for service_name in module.services_used():
                unit = model.unit_for(name, service_name)
                services.append(unit.service(service_name))
                unit_names.append(unit.name)
            self._services[name] = services
            self._module_units[name] = unit_names
        self._module_traffic = {name: 0 for name in model.modules}
        traffic = static_boundary_traffic(model,
                                          software_names=list(model.modules))
        for (module_name, _service_name), words in traffic.items():
            self._module_traffic[module_name] += words
        self._unit_port_names = {
            unit.name: frozenset(unit.ports)
            for unit in model.comm_units.values()
        }

    # ------------------------------------------------- memoized module costs

    def _cached(self, key, compute):
        if key in self._cache:
            self.stats["cache_hits"] += 1
            value = self._cache[key]
        else:
            self.stats["synthesis_calls"] += 1
            try:
                value = compute()
            except SynthesisError as exc:
                value = exc
            self._cache[key] = value
        if isinstance(value, SynthesisError):
            raise value
        return value

    def software_cost(self, module_name, platform_name):
        """Metrics dict of *module_name* run as software on *platform_name*."""
        def compute():
            module = self.model.module(module_name)
            if isinstance(module, HardwareModule) \
                    and not convertible_to_software(module):
                # Same movability rule as PartitionSpace/repartition: a
                # feasible score must correspond to a buildable placement.
                raise software_conversion_error(module_name,
                                                "run as software")
            (fsm,) = module.behaviours()
            return estimate_software_metrics(
                self.platforms[platform_name], fsm,
                self._services[module_name],
            )
        return self._cached((module_name, "sw", platform_name), compute)

    def hardware_cost(self, module_name):
        """Merged :class:`AreaTimingEstimate` of *module_name* as hardware.

        The estimator models the XC4000 family independent of the concrete
        device, so the result is shared across every platform of the sweep.
        """
        def compute():
            module = self.model.module(module_name)
            fsmds = build_hw_fsmds(module, width=self.width)
            total, _ = estimate_module(fsmds, module_name, width=self.width)
            return total
        return self._cached((module_name, "hw", None), compute)

    # ------------------------------------------------------------ evaluation

    def evaluate(self, candidate):
        """Score one candidate; never raises for an infeasible placement."""
        platform = self.platforms[candidate.platform]
        hw_names = sorted(candidate.hw_modules)
        sw_names = sorted(set(self.model.modules) - set(hw_names))
        reasons = []

        if hw_names and not platform.has_hardware:
            return CandidateScore(
                candidate, False,
                (f"platform {candidate.platform!r} has no programmable hardware",),
                0, 0, 0.0, 0.0, 0.0, 0.0, 0,
            )

        area = flip_flops = 0
        critical_path = 0.0
        for name in hw_names:
            try:
                estimate = self.hardware_cost(name)
            except SynthesisError as exc:
                reasons.append(f"{name}: {exc}")
                continue
            area += estimate.clbs_total
            flip_flops += estimate.flip_flops
            critical_path = max(critical_path, estimate.critical_path_ns)

        hw_clock = platform.hardware_clock_ns() or 0
        if hw_names:
            achievable = achievable_clock_ns(critical_path)
            clock_ns = float(max(hw_clock, achievable))
        else:
            achievable = None
            clock_ns = 0.0

        sw_load = 0.0
        worst_sw = 0.0
        for name in sw_names:
            try:
                metrics = self.software_cost(name, candidate.platform)
            except SynthesisError as exc:
                reasons.append(f"{name}: {exc}")
                continue
            sw_load += metrics["worst_activation_ns"]
            worst_sw = max(worst_sw, metrics["worst_activation_ns"])

        words = sum(self._module_traffic.get(name, 0) for name in sw_names)
        bus_ns = platform.bus.transfer_ns(words) if words else 0.0

        # Count distinct unqualified port names of the SW-reachable units,
        # exactly like the flow's address map (a dict keyed by port name
        # collapses duplicates across units).
        sw_port_names = set()
        for name in sw_names:
            for unit_name in self._module_units[name]:
                sw_port_names |= self._unit_port_names[unit_name]
        address_count = len(sw_port_names)

        # The same predicates CosynthesisFlow._check_constraints applies —
        # shared functions, so the static prune cannot drift from the flow.
        device = platform.device
        if hw_names:
            if device is None:
                reasons.append(
                    f"platform {candidate.platform!r} offers no FPGA device"
                )
            else:
                problem = check_device_fit(area, device)
                if problem:
                    reasons.append(problem)
            if achievable is not None:
                problem = check_bus_tracking(achievable, platform.bus)
                if problem:
                    reasons.append(problem)
        problem = check_address_window(address_count, platform.bus)
        if problem:
            reasons.append(problem)

        latency = max(worst_sw, clock_ns) + bus_ns
        return CandidateScore(
            candidate, not reasons, tuple(reasons),
            area, flip_flops, clock_ns, latency, sw_load, bus_ns, address_count,
        )

    def evaluate_many(self, candidates):
        """Serial batch evaluation (order-preserving)."""
        return [self.evaluate(candidate) for candidate in candidates]
