"""Pareto-front extraction over candidate scores.

Objectives are minimized; see :meth:`CandidateScore.objectives`.  The front
contains every feasible candidate not strictly dominated by another —
candidates with *identical* objective vectors are all kept (they are
distinct design points the user may still want to choose between).
"""


def dominates(left, right):
    """True when objective tuple *left* Pareto-dominates *right*."""
    return (all(l <= r for l, r in zip(left, right))
            and any(l < r for l, r in zip(left, right)))


def pareto_front(scores):
    """Non-dominated feasible scores, deterministically ordered.

    Duplicate candidates (a search mode may revisit a placement) are
    collapsed first; the result is sorted by objective vector, then by
    candidate key, so the front is reproducible independent of evaluation
    order.
    """
    unique = {}
    for score in scores:
        if score.feasible:
            unique.setdefault(score.candidate.key(), score)
    items = sorted(unique.values(),
                   key=lambda s: (s.objectives(), s.candidate.key()))
    front = []
    # Lexicographic order guarantees a later item never dominates an earlier
    # one, so each item only needs checking against the front built so far.
    for score in items:
        if not any(dominates(member.objectives(), score.objectives())
                   for member in front):
            front.append(score)
    return front
