"""Multiprocessing candidate evaluation.

Each worker process holds its own :class:`CandidateEvaluator` (built once
from the pickled model in the pool initializer), so per-module synthesis
memoization happens per worker.  ``Pool.map`` returns results in submission
order, and scores are pure functions of ``(model, candidate)``, so a
parallel run produces **byte-identical reports** to a serial run — the
worker count only changes wall-clock time.

The pool prefers the ``fork`` start method (custom platforms registered in
the parent stay visible to workers); where ``fork`` is unavailable the
default start method is used, which restricts the sweep to importable
platform factories.
"""

import multiprocessing
import pickle

_EVALUATOR = None


def _init_worker(model_bytes, platform_names, width):
    global _EVALUATOR
    from repro.dse.cost import CandidateEvaluator

    _EVALUATOR = CandidateEvaluator(pickle.loads(model_bytes), platform_names,
                                    width=width)


def _evaluate_one(candidate):
    return _EVALUATOR.evaluate(candidate)


class ParallelEvaluationPool:
    """Owns the worker pool for one exploration; use as a context manager."""

    def __init__(self, model, platform_names, workers, width=16):
        self._workers = workers
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(pickle.dumps(model), list(platform_names), width),
        )

    def evaluate_many(self, candidates):
        if not candidates:
            return []
        chunksize = max(1, len(candidates) // (4 * self._workers))
        return self._pool.map(_evaluate_one, candidates, chunksize=chunksize)

    def close(self):
        self._pool.close()
        self._pool.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
