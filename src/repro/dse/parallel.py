"""Multiprocessing candidate evaluation.

Each worker process holds its own :class:`CandidateEvaluator` (built once
from the pickled model in the pool initializer), so per-module synthesis
memoization happens per worker.  The pool mechanics — ``fork`` preference,
order-preserving ``map``, chunk sizing — live in the shared
:class:`repro.utils.pool.WorkerPool` helper, which the sweep service
(:mod:`repro.sweep`) reuses; scores are pure functions of
``(model, candidate)``, so a parallel run produces **byte-identical
reports** to a serial run — the worker count only changes wall-clock time.
"""

import pickle

from repro.utils.pool import WorkerPool

_EVALUATOR = None


def _init_worker(model_bytes, platform_names, width):
    global _EVALUATOR
    from repro.dse.cost import CandidateEvaluator

    _EVALUATOR = CandidateEvaluator(pickle.loads(model_bytes), platform_names,
                                    width=width)


def _evaluate_one(candidate):
    return _EVALUATOR.evaluate(candidate)


class ParallelEvaluationPool:
    """Owns the worker pool for one exploration; use as a context manager."""

    def __init__(self, model, platform_names, workers, width=16):
        self._pool = WorkerPool(
            workers,
            initializer=_init_worker,
            initargs=(pickle.dumps(model), list(platform_names), width),
        )

    def evaluate_many(self, candidates):
        return self._pool.map(_evaluate_one, candidates)

    def close(self):
        self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
