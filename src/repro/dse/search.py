"""Search modes over the partition space.

* :func:`exhaustive_search` — scores **every** placement of every platform:
  ``2^n`` per hardware platform (n = movable modules), provably complete.
  Tractable to ``EXHAUSTIVE_LIMIT_CANDIDATES`` total candidates.
* :func:`heuristic_search` — seeded multi-start greedy search for larger
  models.  Each restart draws a random starting placement and a random
  weight vector over the objectives (so different restarts pursue different
  corners of the area/latency/load tradeoff), then repeatedly evaluates
  every single-module flip of the current placement in one batch — the
  batches are what the worker pool parallelises — and moves to the best
  neighbour until none improves.  Every score visited lands in the archive,
  and the Pareto front is taken over the whole archive.

Both modes call only the supplied ``evaluate_many`` callback, which is
either the serial evaluator or a multiprocessing pool: for a fixed seed the
proposed candidates, and therefore the resulting scores, are identical
either way.
"""

import random

from repro.dse.space import Candidate
from repro.utils.errors import SynthesisError

#: ``mode="auto"`` stays exhaustive while the full enumeration is at most
#: this many candidates (2^10 placements on each of the four built-in
#: platforms ≈ 10 movable modules).
EXHAUSTIVE_LIMIT_CANDIDATES = 4 * (1 << 10)

#: Hard candidate cap for an explicitly requested exhaustive run.
EXHAUSTIVE_HARD_LIMIT_CANDIDATES = 1 << 16

#: Scalarization scales: one unit of weight ≈ 100 CLBs ≈ 1 µs of latency
#: ≈ 1 µs of software load (the typical magnitudes of the three objectives).
_SCALES = (100.0, 1000.0, 1000.0)

#: Scalar cost assigned to an infeasible candidate (dwarfs any feasible one).
_INFEASIBLE_PENALTY = 1e12


def total_placements(space, platforms):
    """Size of the full enumeration across the swept platforms."""
    return sum(space.placement_count(platform)
               for platform in platforms.values())


def enumerate_candidates(space, platforms):
    """All candidates of the exhaustive sweep, in deterministic order."""
    candidates = []
    for platform_name in sorted(platforms):
        for hw_set in space.placements(platforms[platform_name]):
            candidates.append(Candidate(platform_name, tuple(hw_set)))
    return candidates


def exhaustive_search(space, platforms, evaluate_many):
    """Score every placement of every platform."""
    total = total_placements(space, platforms)
    if total > EXHAUSTIVE_HARD_LIMIT_CANDIDATES:
        raise SynthesisError(
            f"exhaustive search over {total} candidates "
            f"({len(space.movable)} movable modules) refused; "
            "use heuristic mode"
        )
    return evaluate_many(enumerate_candidates(space, platforms))


def _scalar(score, weights):
    if not score.feasible:
        # Rank infeasible candidates by area so a climb can still move
        # toward the feasible region.
        return _INFEASIBLE_PENALTY + score.area_clbs
    return sum(weight * objective / scale for weight, objective, scale
               in zip(weights, score.objectives(), _SCALES))


def heuristic_search(space, platforms, evaluate_many, seed=0, restarts=3,
                     max_rounds=20):
    """Seeded multi-start greedy search; returns every score visited.

    Deterministic for a fixed ``(seed, restarts, max_rounds)``: the random
    draws depend only on the seed and the iteration structure, and the
    greedy trajectory depends only on the (deterministic) scores.
    """
    rng = random.Random(f"dse:{seed}")
    archive = {}

    def evaluate(candidates):
        fresh = [c for c in candidates if c.key() not in archive]
        if fresh:
            for score in evaluate_many(fresh):
                archive[score.candidate.key()] = score
        return [archive[c.key()] for c in candidates]

    for platform_name in sorted(platforms):
        platform = platforms[platform_name]
        if not platform.has_hardware:
            evaluate([Candidate(platform_name, tuple(hw_set))
                      for hw_set in space.placements(platform)])
            continue
        for _restart in range(restarts):
            weights = tuple(rng.uniform(0.05, 1.0) for _ in range(3))
            current, = evaluate(
                [Candidate(platform_name, tuple(space.random_placement(rng)))]
            )
            for _round in range(max_rounds):
                hw_set = set(current.candidate.hw_modules)
                neighbours = [
                    Candidate(platform_name, tuple(hw_set ^ {module}))
                    for module in space.movable
                ]
                if not neighbours:
                    break
                scores = evaluate(neighbours)
                best = min(scores,
                           key=lambda s: (_scalar(s, weights), s.candidate.key()))
                if _scalar(best, weights) < _scalar(current, weights) - 1e-9:
                    current = best
                else:
                    break
    return list(archive.values())
