"""The hw/sw partition design space: candidates, movability, repartitioning.

The paper's unified model treats the partitioning as an *input*
(:mod:`repro.cosyn.target` says so verbatim); this module makes it a
*variable*.  A design point — a :class:`Candidate` — is one platform plus
the set of modules placed in hardware; every other module runs as software.

Which modules may move:

* a :class:`~repro.core.module.SoftwareModule` can always move to hardware
  (its single FSM becomes a one-process hardware module),
* a :class:`~repro.core.module.HardwareModule` can move to software only
  when it has exactly one process and no ports or internal signals (the
  process FSM then becomes the module's software behaviour); multi-process
  or ported hardware modules are *pinned* to hardware,
* callers may pin any module to one side explicitly
  (``pins={"Relay0": "sw"}``), e.g. to keep testkit relays co-simulatable.
"""

import dataclasses

from repro.core.model import SystemModel
from repro.core.module import HardwareModule, SoftwareModule
from repro.utils.errors import SynthesisError


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One design point: a platform name plus the modules placed in hardware."""

    platform: str
    hw_modules: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "hw_modules",
                           tuple(sorted(set(self.hw_modules))))

    def key(self):
        return (self.platform, self.hw_modules)

    def label(self):
        placed = "+".join(self.hw_modules) if self.hw_modules else "all-sw"
        return f"{self.platform}:{placed}"

    def __repr__(self):
        return f"Candidate({self.label()})"


def convertible_to_software(module):
    return (len(module.behaviours()) == 1 and not module.ports
            and not module.internal_signals)


def software_conversion_error(module_name, verb):
    """The one error every consumer of the movability rule raises."""
    return SynthesisError(
        f"module {module_name!r} cannot {verb}: it has multiple processes "
        "or hardware ports"
    )


class PartitionSpace:
    """The set of hw/sw placements of one model that DSE may explore."""

    def __init__(self, model, pins=None):
        self.model = model
        self.pins = dict(pins or {})
        for name, side in self.pins.items():
            if name not in model.modules:
                raise SynthesisError(f"pinned module {name!r} is not in the model")
            if side not in ("sw", "hw"):
                raise SynthesisError(
                    f"pin for {name!r} must be 'sw' or 'hw', got {side!r}"
                )
            module = model.modules[name]
            if side == "sw" and isinstance(module, HardwareModule) \
                    and not convertible_to_software(module):
                raise software_conversion_error(name, "be pinned to software")
        self.movable = []
        self.pinned_hw = []
        self.pinned_sw = []
        for name in sorted(model.modules):
            module = model.modules[name]
            side = self.pins.get(name)
            if side == "hw":
                self.pinned_hw.append(name)
            elif side == "sw":
                self.pinned_sw.append(name)
            elif isinstance(module, SoftwareModule):
                self.movable.append(name)
            elif convertible_to_software(module):
                self.movable.append(name)
            else:
                self.pinned_hw.append(name)

    # ------------------------------------------------------------ enumeration

    def placement_count(self, platform):
        """Number of placements :meth:`placements` yields for *platform*."""
        if not platform.has_hardware:
            return 0 if self.pinned_hw else 1
        return 1 << len(self.movable)

    def placements(self, platform):
        """Yield every hw-module set for *platform*, in deterministic order.

        For a platform with programmable hardware this is all ``2^n``
        subsets of the movable modules (each unioned with the pinned-hw
        set), in bitmask order over the sorted module names.  A platform
        without hardware admits only the all-software placement — and none
        at all when some module is pinned to hardware.
        """
        if not platform.has_hardware:
            if not self.pinned_hw:
                yield frozenset()
            return
        base = frozenset(self.pinned_hw)
        for mask in range(1 << len(self.movable)):
            chosen = {self.movable[i] for i in range(len(self.movable))
                      if mask >> i & 1}
            yield base | frozenset(chosen)

    def random_placement(self, rng):
        """One random feasible-by-construction hw set (pins respected)."""
        chosen = {name for name in self.movable if rng.random() < 0.5}
        return frozenset(chosen) | frozenset(self.pinned_hw)


def repartition(model, hw_modules, name=None):
    """Build a fresh :class:`SystemModel` placing exactly *hw_modules* in HW.

    Module FSMs and communication units are shared with *model* (they are
    static descriptions); module wrappers and bindings are rebuilt, so the
    input model is never mutated.
    """
    hw_modules = set(hw_modules)
    unknown = hw_modules - set(model.modules)
    if unknown:
        raise SynthesisError(f"unknown modules in placement: {sorted(unknown)}")
    new = SystemModel(name or model.name, description=model.description)
    for unit in model.comm_units.values():
        new.add_comm_unit(unit)
    for mod_name, module in model.modules.items():
        if mod_name in hw_modules:
            if isinstance(module, HardwareModule):
                new.add_hardware_module(module)
            else:
                new.add_hardware_module(HardwareModule(
                    mod_name, [module.fsm], ports=list(module.ports.values()),
                    description=module.description,
                ))
        else:
            if isinstance(module, SoftwareModule):
                new.add_software_module(module)
            else:
                if not convertible_to_software(module):
                    raise software_conversion_error(mod_name,
                                                    "be placed in software")
                (fsm,) = module.behaviours()
                new.add_software_module(SoftwareModule(
                    mod_name, fsm, description=module.description,
                ))
    for binding in model.bindings:
        new.bind(binding.module, binding.service, binding.unit)
    return new
