"""Automated hw/sw partition exploration (design-space exploration, DSE).

The paper's unified model assumes the hardware/software partitioning is an
*input*; this subsystem searches for one.  Given a
:class:`~repro.core.model.SystemModel` (hand-built or produced by
:mod:`repro.testkit`), it

1. enumerates hw/sw placements of the model's modules across every
   registered platform (:mod:`repro.dse.space`) — exhaustively while the
   full enumeration stays within
   :data:`~repro.dse.search.EXHAUSTIVE_LIMIT_CANDIDATES` candidates
   (≈10 movable modules on the built-in platforms), by seeded multi-start
   greedy search beyond that,
2. scores each candidate with a static cost model
   (:mod:`repro.dse.cost`): HLS area/clock estimates for the hardware side,
   software-synthesis activation timing for the software side, and static
   SW/HW boundary traffic from :mod:`repro.analysis.metrics` — memoized per
   (module, side, platform) and optionally evaluated on a
   ``multiprocessing`` worker pool (:mod:`repro.dse.parallel`) with
   byte-identical results,
3. prunes by the platform constraint checks the co-synthesis flow enforces
   (device fit, clock/bus tracking, address window),
4. returns the Pareto front over (area, latency, software load)
   (:mod:`repro.dse.pareto`) with full
   :class:`~repro.cosyn.flow.CosynthesisResult` artefacts for each winner,
   and can validate the front in co-simulation (:mod:`repro.dse.validate`).

Entry points: ``python -m repro.dse`` (``make dse`` / ``make dse-quick``)
or :func:`explore_model` / :class:`DesignSpaceExplorer` from code.  See
``docs/dse.md``.
"""

from repro.dse.cost import CandidateEvaluator, CandidateScore
from repro.dse.explorer import (
    DesignSpaceExplorer,
    ExplorationReport,
    explore_model,
)
from repro.dse.pareto import dominates, pareto_front
from repro.dse.search import (
    EXHAUSTIVE_LIMIT_CANDIDATES,
    enumerate_candidates,
    exhaustive_search,
    heuristic_search,
)
from repro.dse.space import Candidate, PartitionSpace, repartition
from repro.dse.validate import validate_candidate

__all__ = [
    "Candidate",
    "CandidateEvaluator",
    "CandidateScore",
    "DesignSpaceExplorer",
    "ExplorationReport",
    "EXHAUSTIVE_LIMIT_CANDIDATES",
    "PartitionSpace",
    "dominates",
    "enumerate_candidates",
    "exhaustive_search",
    "explore_model",
    "heuristic_search",
    "pareto_front",
    "repartition",
    "validate_candidate",
]
