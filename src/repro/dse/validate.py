"""Co-simulation validation of Pareto-front candidates.

The static cost model can only say a placement is *statically* feasible;
running the survivor through :class:`~repro.cosim.session.CosimSession`
checks it still behaves.  The completion policy and the functional oracle
(``RECEIVED``/``TOTAL`` expectations, every software module finished) are
shared with the testkit conformance kit
(:func:`repro.testkit.oracles.run_session_to_completion` /
:func:`~repro.testkit.oracles.check_functional_outcome`), so DSE validation
and the conformance sweep can never silently diverge.
"""

from repro.cosim import CosimSession
from repro.dse.space import repartition
from repro.testkit.oracles import (
    COSIM_MAX_TIME,
    check_functional_outcome,
    run_session_to_completion,
)
from repro.utils.errors import ReproError

#: Generous completion horizon (the testkit cosim oracle's).
MAX_VALIDATION_TIME = COSIM_MAX_TIME


def validate_candidate(model, candidate, cosim_params=None, expectations=None,
                       environment=None, max_time=MAX_VALIDATION_TIME):
    """Co-simulate *candidate*'s placement of *model*; return a verdict dict.

    *expectations* follows the testkit convention
    (``{consumer: {"words": n, "total": sum} | None}``); with no
    expectations only "every software module finished" is checked.
    *environment* is an optional ``hook(session)`` registered via
    :meth:`CosimSession.add_environment` — the motor model's physical plant
    is attached this way.
    """
    expectations = expectations or {}
    try:
        candidate_model = repartition(model, candidate.hw_modules)
        session = CosimSession(candidate_model, **(cosim_params or {}))
        if environment is not None:
            session.add_environment(environment)
        result = run_session_to_completion(session, expectations,
                                           max_time=max_time)
    except ReproError as exc:
        # Any library failure — an unplaceable module (SynthesisError), a
        # model that no longer validates, an illegal simulation condition —
        # is a verdict, not an abort: the search already ran.
        return {
            "candidate": candidate.label(),
            "ok": False,
            "problems": [f"co-simulation failed: {exc}"],
            "end_time": None,
        }

    problems = check_functional_outcome(session, result, expectations,
                                        max_time=max_time)
    return {
        "candidate": candidate.label(),
        "ok": not problems,
        "problems": problems,
        "end_time": result.end_time,
    }
