"""The design-space exploration engine.

:class:`DesignSpaceExplorer` ties the subsystem together: it enumerates (or
heuristically walks) the hw/sw placements of a model across every requested
platform, scores candidates with the memoized static cost model — serially
or on a ``multiprocessing`` worker pool — prunes by platform constraints,
extracts the Pareto front, re-runs the full
:class:`~repro.cosyn.flow.CosynthesisFlow` on each front member so winners
come with complete synthesis artefacts, and (optionally) validates the
front in co-simulation.
"""

import json

from repro.cosyn.flow import CosynthesisFlow
from repro.dse.cost import CandidateEvaluator
from repro.dse.parallel import ParallelEvaluationPool
from repro.dse.pareto import pareto_front
from repro.dse.search import (
    EXHAUSTIVE_LIMIT_CANDIDATES,
    exhaustive_search,
    heuristic_search,
    total_placements,
)
from repro.dse.space import PartitionSpace, repartition
from repro.dse.validate import validate_candidate
from repro.platforms import available_platforms, get_platform
from repro.utils.errors import ReproError, SynthesisError
from repro.utils.text import format_table


class ExplorationReport:
    """Everything one exploration produced, JSON-serializable."""

    def __init__(self, system, mode, seed, platform_names, space, scores,
                 front, winners, validation, stats):
        self.system = system
        self.mode = mode
        self.seed = seed
        self.platform_names = list(platform_names)
        self.movable = list(space.movable)
        self.pinned_hw = list(space.pinned_hw)
        self.pinned_sw = list(space.pinned_sw)
        self.scores = list(scores)
        self.front = list(front)
        #: ``{candidate key: CosynthesisResult | SynthesisError}`` aligned
        #: with :attr:`front`.
        self.winners = winners
        self.validation = validation
        #: Per-platform ``{"enumerated", "evaluated", "feasible"}`` counts;
        #: ``enumerated`` is None in heuristic mode (the space is sampled).
        self.stats = stats

    @property
    def feasible(self):
        return [score for score in self.scores if score.feasible]

    def front_entries(self):
        """Front scores with their full co-synthesis artefact dicts."""
        entries = []
        for score in self.front:
            entry = score.as_dict()
            winner = self.winners.get(score.candidate.key())
            if winner is None:
                entry["cosynthesis"] = None
            elif isinstance(winner, ReproError):
                entry["cosynthesis"] = {"error": str(winner)}
            else:
                entry["cosynthesis"] = winner.as_dict()
            entries.append(entry)
        return entries

    def as_dict(self, include_scores=False):
        data = {
            "system": self.system,
            "mode": self.mode,
            "seed": self.seed,
            "objectives": ["area_clbs", "latency_ns", "sw_load_ns"],
            "platforms": self.platform_names,
            "movable_modules": self.movable,
            "pinned_hw": self.pinned_hw,
            "pinned_sw": self.pinned_sw,
            "per_platform": self.stats,
            "evaluated": len(self.scores),
            "feasible": len(self.feasible),
            "front": self.front_entries(),
            "validation": self.validation,
        }
        if include_scores:
            data["scores"] = [
                score.as_dict()
                for score in sorted(self.scores,
                                    key=lambda s: s.candidate.key())
            ]
        return data

    def to_json(self, include_scores=False, indent=2):
        """Deterministic JSON rendering (byte-identical for equal runs)."""
        return json.dumps(self.as_dict(include_scores=include_scores),
                          indent=indent, sort_keys=True)

    def summary(self):
        rows = []
        for score in self.front:
            verdict = ""
            if self.validation is not None:
                for item in self.validation:
                    if item["candidate"] == score.candidate.label():
                        verdict = "ok" if item["ok"] else "FAILED"
            rows.append((
                score.candidate.platform,
                "+".join(score.candidate.hw_modules) or "(all sw)",
                score.area_clbs,
                round(score.clock_ns, 1),
                round(score.latency_ns, 1),
                round(score.sw_load_ns, 1),
                verdict,
            ))
        table = format_table(
            ["platform", "hw modules", "CLBs", "clock (ns)", "latency (ns)",
             "sw load (ns)", "cosim"],
            rows,
        )
        return (
            f"design-space exploration of {self.system} ({self.mode} mode)\n"
            f"{len(self.scores)} candidates evaluated, "
            f"{len(self.feasible)} feasible, "
            f"Pareto front of {len(self.front)}:\n{table}"
        )


class DesignSpaceExplorer:
    """Sweeps hw/sw placements of one model across the registered platforms."""

    def __init__(self, model, platforms=None, pins=None, width=16,
                 cosim_params=None, expectations=None, environment=None):
        self.model = model
        self.platform_names = sorted(platforms) if platforms is not None \
            else available_platforms()
        if not self.platform_names:
            raise SynthesisError("no platforms to sweep")
        self.platforms = {name: get_platform(name)
                          for name in self.platform_names}
        self.space = PartitionSpace(model, pins=pins)
        self.width = width
        self.cosim_params = dict(cosim_params or {})
        self.expectations = expectations
        #: Optional ``hook(session)`` attached to every validation cosim
        #: (e.g. the motor's physical plant).
        self.environment = environment
        self.evaluator = CandidateEvaluator(model, self.platform_names,
                                            width=width)

    def resolve_mode(self, mode):
        if mode == "auto":
            total = total_placements(self.space, self.platforms)
            return ("exhaustive" if total <= EXHAUSTIVE_LIMIT_CANDIDATES
                    else "heuristic")
        if mode not in ("exhaustive", "heuristic"):
            raise SynthesisError(
                f"unknown search mode {mode!r}; "
                "expected auto, exhaustive or heuristic"
            )
        return mode

    def explore(self, mode="auto", seed=0, workers=1, restarts=3,
                max_rounds=20, validate=False, synthesize_winners=True):
        """Run one exploration and return an :class:`ExplorationReport`.

        With ``workers > 1`` candidate evaluation runs on a multiprocessing
        pool; the report is byte-identical to a serial run.
        """
        mode = self.resolve_mode(mode)

        def run_search(evaluate_many):
            if mode == "exhaustive":
                return exhaustive_search(self.space, self.platforms,
                                         evaluate_many)
            return heuristic_search(self.space, self.platforms, evaluate_many,
                                    seed=seed, restarts=restarts,
                                    max_rounds=max_rounds)

        if workers > 1:
            with ParallelEvaluationPool(self.model, self.platform_names,
                                        workers, width=self.width) as pool:
                scores = run_search(pool.evaluate_many)
        else:
            scores = run_search(self.evaluator.evaluate_many)

        front = pareto_front(scores)

        winners = {}
        if synthesize_winners:
            for score in front:
                winners[score.candidate.key()] = self._synthesize(score)

        validation = None
        if validate:
            validation = [
                validate_candidate(self.model, score.candidate,
                                   cosim_params=self.cosim_params,
                                   expectations=self.expectations,
                                   environment=self.environment)
                for score in front
            ]

        stats = {}
        for name in self.platform_names:
            platform_scores = [s for s in scores
                               if s.candidate.platform == name]
            stats[name] = {
                "enumerated": (self.space.placement_count(self.platforms[name])
                               if mode == "exhaustive" else None),
                "evaluated": len(platform_scores),
                "feasible": sum(1 for s in platform_scores if s.feasible),
            }

        return ExplorationReport(
            self.model.name, mode, seed, self.platform_names, self.space,
            scores, front, winners, validation, stats,
        )

    def _synthesize(self, score):
        """Full co-synthesis of one front candidate (complete artefacts)."""
        try:
            candidate_model = repartition(self.model,
                                          score.candidate.hw_modules)
            flow = CosynthesisFlow(candidate_model,
                                   self.platforms[score.candidate.platform])
            return flow.run()
        except ReproError as exc:
            # A winner that fails full synthesis becomes a per-entry error,
            # never an abort — the search already ran.
            return exc


def explore_model(model, **kwargs):
    """One-call convenience wrapper: explore *model* with default settings.

    Keyword arguments are split between :class:`DesignSpaceExplorer`
    (``platforms``, ``pins``, ``width``, ``cosim_params``, ``expectations``,
    ``environment``) and :meth:`~DesignSpaceExplorer.explore` (everything
    else).
    """
    init_keys = ("platforms", "pins", "width", "cosim_params", "expectations",
                 "environment")
    init_kwargs = {key: kwargs.pop(key) for key in init_keys if key in kwargs}
    explorer = DesignSpaceExplorer(model, **init_kwargs)
    return explorer.explore(**kwargs)
