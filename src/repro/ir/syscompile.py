"""Whole-system compilation: one code object for the clocked backplane.

:mod:`repro.ir.compile` (PR 5) made each FSM *state* fast, but a
co-simulated system still pays per-delta Python dispatch around those code
objects: one ``on_edge`` wrapper frame per clocked process, one
``FsmInstance.step`` frame (plus a :class:`~repro.ir.interp.StepResult`
allocation) per instance, one accessor method call per port access and one
``Simulator.schedule`` call per port write — on every rising clock edge.
On the mixed-system benchmark that dispatch, not the FSM arithmetic, is
the plateau (2.07x vs the 5.76x of the pure-FSM workload).

This module translates an entire :class:`~repro.core.model.SystemModel` —
every communication-unit protocol controller and every hardware-module
process, i.e. the complete population of clocked FSM processes — into a
**single** generated step function registered once on the clock:

* signals are bound as default-argument locals (``LOAD_FAST``), reads are
  ``sig._value`` (the attribute the ``Signal.value`` property returns),
  writes append to the kernel's delta queue directly,
* per-instance dispatch becomes an ``if/elif`` chain over state-name
  literals with the transition logic inlined exactly as the per-FSM tier
  inlines it (same evaluation order, same eager operators, same errors),
* service-call transitions call the bound
  :class:`~repro.cosim.services.ServiceInstance` directly (trace tokens,
  invocation counts and ``reset_on_done`` semantics stay canonical), and
* the kernel statistics the replaced processes would have produced are
  folded in (``process_runs`` compensation, ``transactions`` per write),
  so a fused run is **byte-identical** to the per-FSM and interpreted
  tiers in every conformance fingerprint: waveforms, traces, environments,
  counters and kernel statistics.

Software executors, their activation processes and all service FSMs stay
on the per-FSM tier (they are demand-driven, not clocked); their steps
keep counting ``compile_hits``/``fallback`` while fused candidate steps
count in the session's ``system_compile_hits``.

The generated source is a pure function of the model structure: it is
cached per model (weak), per digest (:func:`model_digest`, via
:mod:`repro.utils.canonical`) in-process, and optionally in a
content-addressed :class:`~repro.sweep.cache.ArtifactCache`, so warm
sweep/server re-runs skip codegen the way they already skip HLS.

``system_mode="differential"`` keeps the per-FSM wiring as ground truth
and cross-checks the fused codegen every rising edge with a *shadow*
variant of the generated function (:class:`ShadowChecker`): pre-edge
state in, predicted post-edge state out, compared against what the real
processes did.  Service-call states are skipped (stepping a service twice
would side-effect the trace); the conformance kit's separate-session
matrix covers those end to end.
"""

import weakref

from repro.ir.compile import _BINOP_TEMPLATES, _UNOP_TEMPLATES, _expr_var_reads, _stmt_var_reads
from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.utils.canonical import content_digest
from repro.utils.errors import SimulationError

#: System execution tiers understood by ``CosimSession(system_mode=...)``.
#: ``fused`` runs the whole-system program below; ``per-fsm`` is the PR 5
#: wiring (one clocked process per instance, per-FSM compiled programs);
#: ``interpreted`` is the per-FSM wiring on the tree-walking oracle;
#: ``differential`` executes per-FSM and shadow-checks the fused codegen
#: every rising edge.
SYSTEM_MODES = ("fused", "per-fsm", "interpreted", "differential")

DEFAULT_SYSTEM_MODE = "fused"

#: Bumped whenever the generated source changes shape: it keys the
#: cross-process source cache, so stale cached sources are never reused.
SOURCE_FORMAT = 3


class SystemCompileError(SimulationError):
    """The model cannot be fused into a whole-system program.

    Raised at compile time (unknown IR node, port not wired, lint errors
    with ``lint=True``); the session reacts by falling back to the per-FSM
    wiring and recording the reason — never by changing behaviour.
    """


# --------------------------------------------------------------------- spec


def _expr_spec(expr):
    if isinstance(expr, Const):
        return ["c", expr.value]
    if isinstance(expr, Var):
        return ["v", expr.name]
    if isinstance(expr, PortRef):
        return ["p", expr.port_name]
    if isinstance(expr, BinOp):
        return ["b", expr.op, _expr_spec(expr.left), _expr_spec(expr.right)]
    if isinstance(expr, UnOp):
        return ["u", expr.op, _expr_spec(expr.operand)]
    raise SystemCompileError(f"cannot compile expression {expr!r}")


def _stmt_spec(stmt):
    if isinstance(stmt, Assign):
        return ["a", stmt.target, _expr_spec(stmt.expr)]
    if isinstance(stmt, PortWrite):
        return ["w", stmt.port_name, _expr_spec(stmt.expr)]
    if isinstance(stmt, If):
        return ["i", _expr_spec(stmt.cond),
                [_stmt_spec(s) for s in stmt.then],
                [_stmt_spec(s) for s in stmt.orelse]]
    if isinstance(stmt, Nop):
        return ["n"]
    raise SystemCompileError(f"cannot compile statement {stmt!r}")


def _fsm_spec(fsm):
    return {
        "name": fsm.name,
        "initial": fsm.initial,
        "done": sorted(fsm.done_states),
        "result": fsm.result_var,
        "vars": [[d.name, d.init] for d in fsm.variables.values()],
        "states": [
            [state.name,
             [_stmt_spec(s) for s in state.actions],
             [{"target": t.target,
               "guard": None if t.guard is None else _expr_spec(t.guard),
               "actions": [_stmt_spec(s) for s in t.actions],
               "call": (None if t.call is None else
                        [t.call.service, [_expr_spec(a) for a in t.call.args],
                         t.call.store])}
              for t in state.transitions]]
            for state in fsm.iter_states()
        ],
    }


def system_spec(model):
    """Canonical structural description of everything the codegen consumes.

    Two models with equal specs generate byte-identical source, so the
    spec's :func:`~repro.utils.canonical.content_digest` keys every source
    cache.  Bindings and port initial values are bind-time inputs, not
    codegen inputs, and are deliberately absent.
    """
    return {
        "syscompile": SOURCE_FORMAT,
        "units": [
            {"name": unit.name,
             "ports": sorted(unit.ports),
             "controllers": [{"name": c.name,
                              "protocol": getattr(c, "protocol", ""),
                              "fsm": _fsm_spec(c.fsm)}
                             for c in unit.controllers]}
            for unit in model.comm_units.values()
        ],
        "modules": [
            {"name": module.name,
             "ports": sorted(module.all_signal_names()),
             "fsms": [_fsm_spec(fsm) for fsm in module.behaviours()]}
            for module in model.hardware_modules()
        ],
    }


_DIGEST_CACHE = weakref.WeakKeyDictionary()


def model_digest(model):
    """Content digest of :func:`system_spec`, weakly cached per model.

    Like the per-FSM program cache this assumes the model is not mutated
    after its first compilation.
    """
    digest = _DIGEST_CACHE.get(model)
    if digest is None:
        digest = content_digest(system_spec(model))
        _DIGEST_CACHE[model] = digest
    return digest


# --------------------------------------------------------------------- plan


class _Candidate:
    """One fused FSM instance: a controller or a hardware-module process."""

    __slots__ = ("index", "kind", "owner", "name", "fsm", "accessor",
                 "available", "sig_kind", "has_handler", "env_reads",
                 "protocol")

    def __init__(self, index, kind, owner, name, fsm, accessor, available,
                 sig_kind, has_handler, protocol=""):
        self.index = index
        self.kind = kind            # "ctrl" | "hw"
        self.owner = owner          # unit name | module name
        self.name = name            # controller name | process fsm name
        self.fsm = fsm
        self.accessor = accessor    # accessor slot index
        self.available = available  # port names the accessor can resolve
        self.sig_kind = sig_kind    # "unit" | "module"
        self.has_handler = has_handler
        self.protocol = protocol    # protocol template tag ("" when none)
        reads = set()
        for state in fsm.iter_states():
            _stmt_var_reads(state.actions, reads)
            for t in state.transitions:
                if t.guard is not None:
                    _expr_var_reads(t.guard, reads)
                _stmt_var_reads(t.actions, reads)
                if t.call is not None:
                    for arg in t.call.args:
                        _expr_var_reads(arg, reads)
        self.env_reads = reads

    @property
    def label(self):
        return f"{self.owner}.{self.name}"


class SystemPlan:
    """Deterministic fusion plan: candidates, slots, replaced processes.

    Mirrors the session's build order exactly — controllers in unit order
    then hardware modules in model order — because the fused step function
    must execute its candidates in the order their clocked processes would
    have run.
    """

    def __init__(self, model):
        self.model = model
        self.candidates = []
        self.accessor_keys = []     # ("ctrl", unit, ctrl) | ("hw", module)
        self.adapter_keys = []      # hardware module names
        self.service_keys = []      # (module, service) in first-use order
        self.signal_keys = []       # ("unit"|"module", owner, port)
        self._sig_index = {}
        self._svc_index = {}
        #: Clocked processes the fused step replaces (controllers and
        #: module adapters) — the ``process_runs`` compensation base.
        self.process_count = 0

        for unit in model.comm_units.values():
            available = frozenset(unit.ports)
            for controller in unit.controllers:
                accessor = len(self.accessor_keys)
                self.accessor_keys.append(("ctrl", unit.name, controller.name))
                self.candidates.append(_Candidate(
                    len(self.candidates), "ctrl", unit.name, controller.name,
                    controller.fsm, accessor, available, "unit",
                    has_handler=False,
                    protocol=getattr(controller, "protocol", ""),
                ))
                self.process_count += 1
        for module in model.hardware_modules():
            available = frozenset(module.all_signal_names())
            accessor = len(self.accessor_keys)
            self.accessor_keys.append(("hw", module.name))
            self.adapter_keys.append(module.name)
            self.process_count += 1
            for fsm in module.behaviours():
                self.candidates.append(_Candidate(
                    len(self.candidates), "hw", module.name, fsm.name,
                    fsm, accessor, available, "module", has_handler=True,
                ))

    def signal_slot(self, cand, port_name):
        if port_name not in cand.available:
            raise SystemCompileError(
                f"{cand.label}: port {port_name!r} is not wired to a signal"
            )
        key = (cand.sig_kind, cand.owner, port_name)
        slot = self._sig_index.get(key)
        if slot is None:
            slot = len(self.signal_keys)
            self._sig_index[key] = slot
            self.signal_keys.append(key)
        return slot

    def service_slot(self, cand, service_name):
        key = (cand.owner, service_name)
        slot = self._svc_index.get(key)
        if slot is None:
            slot = len(self.service_keys)
            self._svc_index[key] = slot
            self.service_keys.append(key)
        return slot


# ------------------------------------------------------------------ codegen


class _FragmentEmitter:
    """Emits the inlined step fragment of one candidate.

    ``mode="fused"`` produces the production fragment: canonical counter
    updates, delta-queue writes, observer callbacks.  ``mode="shadow"``
    produces the differential variant: state/env/fired tracked in locals,
    writes evaluated but discarded, no counters — the oracle's prediction
    of what the real per-FSM step will do.

    Accessor read/write counts and the ``transactions`` statistic are
    accumulated in pending counters and flushed as ``+= n`` lines at every
    control-flow boundary, so each executed path bumps exactly the counts
    the per-FSM tier would have bumped on that path (only the per-call
    fold point differs, which is unobservable between deltas).
    """

    def __init__(self, plan, cand, mode, lines):
        self.plan = plan
        self.cand = cand
        self.mode = mode
        self.lines = lines
        self._reads = 0
        self._writes = 0
        self._tx = 0
        # Unique-name counter for the walrus temporaries of inlined
        # eager and/or sites (each site needs its own pair: a nested
        # and/or in an operand would clobber shared names mid-expression).
        self._tmp = 0

    # -- low-level helpers

    def line(self, depth, text):
        self.lines.append("    " * depth + text)

    def flush(self, depth):
        if self.mode != "fused":
            self._reads = self._writes = self._tx = 0
            return
        pad = "    " * depth
        ai = self.cand.accessor
        if self._reads:
            self.lines.append(f"{pad}_r{ai} += {self._reads}")
        if self._writes:
            self.lines.append(f"{pad}_w{ai} += {self._writes}")
        if self._tx:
            self.lines.append(f"{pad}_tx += {self._tx}")
        self._reads = self._writes = self._tx = 0

    def expr(self, expr):
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Var):
            return f"_e[{expr.name!r}]"
        if isinstance(expr, PortRef):
            slot = self.plan.signal_slot(self.cand, expr.port_name)
            self._reads += 1
            return f"g{slot}._value"
        if isinstance(expr, BinOp):
            if expr.op in ("and", "or"):
                # Inlined eager logic, allocation- and call-free: the left
                # operand is bound to a unique temporary, `| 1` forces the
                # chain onward (operands are ints; x|1 is never zero), the
                # right operand is then always evaluated — left-then-right
                # order and raise behaviour match `_eager_and`/`_eager_or`
                # exactly — and the temporary supplies the left truth value.
                self._tmp += 1
                left = f"_b{self._tmp}"
                l_src = self.expr(expr.left)
                r_src = self.expr(expr.right)
                if expr.op == "and":
                    return (f"(1 if (({left} := {l_src}) | 1) and {r_src} "
                            f"and {left} else 0)")
                return (f"(1 if (({left} := {l_src}) | 1) and ({r_src} "
                        f"or {left}) else 0)")
            template = _BINOP_TEMPLATES.get(expr.op)
            if template is None:
                raise SystemCompileError(f"cannot compile expression {expr!r}")
            return template.format(self.expr(expr.left), self.expr(expr.right))
        if isinstance(expr, UnOp):
            template = _UNOP_TEMPLATES.get(expr.op)
            if template is None:
                raise SystemCompileError(f"cannot compile expression {expr!r}")
            return template.format(self.expr(expr.operand))
        raise SystemCompileError(f"cannot compile expression {expr!r}")

    # -- statements

    def emit_stmts(self, statements, depth):
        for stmt in statements:
            if isinstance(stmt, Assign):
                src = self.expr(stmt.expr)
                self.line(depth, f"_e[{stmt.target!r}] = {src}")
            elif isinstance(stmt, PortWrite):
                src = self.expr(stmt.expr)
                slot = self.plan.signal_slot(self.cand, stmt.port_name)
                if self.mode == "fused":
                    self.line(depth, f"_dq((g{slot}, {src}))")
                    self._writes += 1
                    self._tx += 1
                else:
                    self.line(depth, f"_sw = {src}")
            elif isinstance(stmt, If):
                cond = self.expr(stmt.cond)
                self.flush(depth)
                self.line(depth, f"if {cond}:")
                self._emit_suite(stmt.then, depth + 1)
                if stmt.orelse:
                    self.line(depth, "else:")
                    self._emit_suite(stmt.orelse, depth + 1)
            elif isinstance(stmt, Nop):
                pass
            else:
                raise SystemCompileError(f"cannot compile statement {stmt!r}")

    def _emit_suite(self, statements, depth):
        before = len(self.lines)
        self.emit_stmts(statements, depth)
        self.flush(depth)
        if len(self.lines) == before:
            self.line(depth, "pass")

    # -- step results / observers

    def _observe(self, depth, from_state, to_state, fired, called_local):
        if self.mode != "fused":
            return
        fsm = self.cand.fsm
        done = to_state in fsm.done_states
        args = [repr(from_state), repr(to_state), repr(fired), repr(done)]
        result = "None"
        if done and fsm.result_var:
            result = f"_e.get({fsm.result_var!r})"
        if called_local is not None:
            args += [result, called_local]
        elif result != "None":
            args.append(result)
        self.line(depth, "if _ob is not None:")
        self.line(depth + 1, f"_ob(SR({', '.join(args)}))")

    def _fire(self, transition, state, depth, called_local):
        self.emit_stmts(transition.actions, depth)
        self.flush(depth)
        i = self.cand.index
        if self.mode == "fused":
            self.line(depth, f"i{i}.current = {transition.target!r}")
            self.line(depth, f"i{i}.transitions_fired += 1")
            self._observe(depth, state.name, transition.target, True,
                          called_local)
        else:
            self.line(depth, f"_c = {transition.target!r}")
            self.line(depth, "_f = True")
        self.line(depth, "break")

    # -- transitions

    def emit_state(self, state, depth):
        """The full fragment of one state, inside a ``while True:`` goto."""
        has_calls = any(t.call is not None for t in state.transitions)
        called_local = "_cl" if has_calls else None
        if has_calls:
            self.line(depth, "_cl = None")
        self.emit_stmts(state.actions, depth)
        for transition in state.transitions:
            if transition.call is not None:
                if self._emit_call_transition(transition, state, depth):
                    return  # unconditional raise: rest unreachable
                continue
            if transition.guard is not None:
                guard = self.expr(transition.guard)
                self.flush(depth)
                self.line(depth, f"if {guard}:")
                self._fire(transition, state, depth + 1, called_local)
            else:
                self._fire(transition, state, depth, called_local)
                return  # later transitions are unreachable, as in the oracle
        self.flush(depth)
        self._observe(depth, state.name, state.name, False, called_local)
        self.line(depth, "break")

    def _emit_call_transition(self, transition, state, depth):
        """One service-call transition; returns True when it always raises.

        Mirrors :meth:`FsmInstance._run_call_transitions`: the call
        advances before the guard, a pending call falls through to the
        next transition, the store happens on completion.
        """
        call = transition.call
        self.line(depth, f"_cl = {call.service!r}")
        if not self.cand.has_handler:
            # Controllers have no call handler; reaching this transition
            # raises exactly the per-FSM error.
            message = (f"FSM {self.cand.fsm.name!r} calls service "
                       f"{call.service!r} but no call handler is bound")
            self.flush(depth)
            self.line(depth, f"raise SE({message!r})")
            return True
        args = [self.expr(arg) for arg in call.args]
        self.flush(depth)
        slot = self.plan.service_slot(self.cand, call.service)
        self.line(depth, f"_d, _v = v{slot}.step([{', '.join(args)}])")
        self.line(depth, "if _d:")
        inner = depth + 1
        if call.store:
            self.line(inner, f"_e[{call.store!r}] = _v")
        if transition.guard is not None:
            guard = self.expr(transition.guard)
            self.flush(inner)
            self.line(inner, f"if {guard}:")
            self._fire(transition, state, inner + 1, "_cl")
        else:
            self._fire(transition, state, inner, "_cl")
        return False


def _chunk_zero_init(names, lines, depth):
    """Emit ``a = b = ... = 0`` chains in readable chunks."""
    pad = "    " * depth
    for start in range(0, len(names), 8):
        chunk = names[start:start + 8]
        lines.append(pad + " = ".join(chunk) + " = 0")


def _defaults(pairs):
    """Render default-argument bindings, eight per line."""
    out = []
    for start in range(0, len(pairs), 8):
        out.append(", ".join(f"{name}={value}"
                             for name, value in pairs[start:start + 8]))
    return (",\n              ").join(out)


def generate_system_source(model, plan=None):
    """The whole-system source text — a pure function of the model.

    The candidate fragments are emitted first (slot allocation on the plan
    is demand-driven: a signal/service gets a slot when a fragment first
    references it), then the factory headers — whose default-argument
    bindings must cover every allocated slot — are rendered around them.
    """
    plan = plan or SystemPlan(model)

    # ------------------------------------------------- fused step body
    lines = []

    def emit_candidate(cand):
        i = cand.index
        tag = f", protocol {cand.protocol}" if cand.protocol else ""
        lines.append(f"        # {cand.kind} {cand.label} "
                     f"(fsm {cand.fsm.name!r}{tag})")
        lines.append("        try:")
        lines.append(f"            i{i}.steps += 1")
        lines.append(f"            _e = i{i}.env")
        lines.append(f"            _c = i{i}.current")
        lines.append(f"            _ob = i{i}.observer")
        keyword = "if"
        for state in cand.fsm.iter_states():
            lines.append(f"            {keyword} _c == {state.name!r}:")
            keyword = "elif"
            lines.append("                while True:")
            emitter = _FragmentEmitter(plan, cand, "fused", lines)
            emitter.emit_state(state, 5)
        lines.append("            else:")
        lines.append(f"                i{i}.steps -= 1")
        lines.append("                _hits -= 1")
        lines.append("                _ses.system_fallback += 1")
        lines.append(f"                i{i}.step()")
        lines.append("        except KeyError as exc:")
        lines.append("            _k = exc.args[0] if exc.args else None")
        lines.append(f"            if _k in _ER{i} and _k not in i{i}.env:")
        lines.append("                raise SE('undefined variable %r' % (_k,))"
                     " from None")
        lines.append("            raise")

    for cand in plan.candidates:
        if cand.kind == "ctrl":
            emit_candidate(cand)
    for adapter_index, module_name in enumerate(plan.adapter_keys):
        lines.append(f"        # hardware module {module_name!r}")
        lines.append(f"        d{adapter_index}.cycles += 1")
        for cand in plan.candidates:
            if cand.kind == "hw" and cand.owner == module_name:
                emit_candidate(cand)
    lines.append('        _st["transactions"] += _tx')
    for n in range(len(plan.accessor_keys)):
        lines.append(f"        a{n}.reads += _r{n}")
        lines.append(f"        a{n}.writes += _w{n}")
    lines.append("        _ses.system_compile_hits += _hits")
    lines.append("    return _step")
    lines.append("")
    fused_body = lines

    # ------------------------------------------------- shadow step body
    lines = []
    for cand in plan.candidates:
        i = cand.index
        lines.append(f"        # {cand.kind} {cand.label}")
        lines.append(f"        _p = PRE[{i}]")
        lines.append("        while _p is not None:")
        lines.append("            _c = _p[0]")
        lines.append("            _e = _p[1]")
        lines.append("            _f = False")
        keyword = "if"
        emitted_any = False
        for state in cand.fsm.iter_states():
            if any(t.call is not None for t in state.transitions):
                continue  # call states are resynced, not shadow-stepped
            lines.append(f"            {keyword} _c == {state.name!r}:")
            keyword = "elif"
            emitted_any = True
            lines.append("                while True:")
            emitter = _FragmentEmitter(plan, cand, "shadow", lines)
            emitter.emit_state(state, 5)
        if emitted_any:
            lines.append("            else:")
            lines.append(f"                OUT[{i}] = None")
            lines.append("                break")
            lines.append(f"            OUT[{i}] = (_c, _e, _f)")
            lines.append("            break")
        else:
            lines.append(f"            OUT[{i}] = None")
            lines.append("            break")
    lines.append("    return _shadow")
    lines.append("")
    shadow_body = lines

    # ------------------------------------- assemble (slots now complete)
    out = [
        f"# Whole-system program for {model.name!r}"
        f" (repro.ir.syscompile format {SOURCE_FORMAT}).",
        "from repro.ir.compile import _eager_and as _and, _eager_or as _or",
        "from repro.ir.interp import StepResult, _int_div as _div, _int_mod as _mod",
        "from repro.utils.errors import SimulationError",
        "",
    ]
    for cand in plan.candidates:
        reads = ", ".join(repr(name) for name in sorted(cand.env_reads))
        out.append(f"_ER{cand.index} = frozenset(({reads}{',' if reads else ''}))")
    out.append("")
    defaults = [("_sim", '_c["sim"]'), ("_clk", '_c["clock"]'),
                ("_ses", '_c["session"]'), ("SR", "StepResult"),
                ("SE", "SimulationError")]
    defaults += [(f"g{n}", f'_c["signals"][{n}]')
                 for n in range(len(plan.signal_keys))]
    defaults += [(f"i{c.index}", f'_c["instances"][{c.index}]')
                 for c in plan.candidates]
    defaults += [(f"a{n}", f'_c["accessors"][{n}]')
                 for n in range(len(plan.accessor_keys))]
    defaults += [(f"v{n}", f'_c["services"][{n}]')
                 for n in range(len(plan.service_keys))]
    defaults += [(f"d{n}", f'_c["adapters"][{n}]')
                 for n in range(len(plan.adapter_keys))]
    out.append("def _bind_fused(_c):")
    out.append(f"    def _step({_defaults(defaults)}):")
    out.append("        _st = _sim.statistics")
    out.append(f'        _st["process_runs"] += {plan.process_count - 1}')
    out.append("        if _clk._value != 1:")
    out.append("            return")
    out.append("        _dq = _sim._delta_queue.append")
    out.append("        _tx = 0")
    out.append(f"        _hits = {len(plan.candidates)}")
    counters = []
    for n in range(len(plan.accessor_keys)):
        counters += [f"_r{n}", f"_w{n}"]
    _chunk_zero_init(counters, out, 2)
    out.extend(fused_body)
    defaults = [("SE", "SimulationError")]
    defaults += [(f"g{n}", f'_c["signals"][{n}]')
                 for n in range(len(plan.signal_keys))]
    out.append("def _bind_shadow(_c):")
    out.append(f"    def _shadow(PRE, OUT, {_defaults(defaults)}):")
    out.extend(shadow_body)
    return "\n".join(out)


# ------------------------------------------------------------------ program


class SystemProgram:
    """The compiled whole-system program of one model.

    Holds the generated source, its digest, the slot metadata a session
    needs to assemble a binding context, and the two bind entry points
    (production step function and differential shadow).  Shared by every
    session built from the same model object.
    """

    def __init__(self, model, plan, digest, source):
        self.name = model.name
        self.plan = plan
        self.digest = digest
        self.source = source
        code = _CODE_CACHE.get(digest)
        if code is None:
            code = compile(source, f"<syscompile:{model.name}>", "exec")
            _CODE_CACHE[digest] = code
        namespace = {}
        exec(code, namespace)  # noqa: S102 - our own generated source
        self._bind_fused = namespace["_bind_fused"]
        self._bind_shadow = namespace["_bind_shadow"]

    @property
    def process_count(self):
        return self.plan.process_count

    @property
    def candidates(self):
        return self.plan.candidates

    def bind(self, ctx):
        """Bind the production step function to one session's objects.

        *ctx* maps ``sim``/``clock``/``session`` plus the slot lists
        (``signals``/``instances``/``accessors``/``services``/``adapters``)
        in the orders recorded on :attr:`plan`.
        """
        return self._bind_fused(ctx)

    def bind_shadow(self, ctx):
        """Bind the shadow variant (needs only ``signals``)."""
        return self._bind_shadow(ctx)

    def __repr__(self):
        return (f"SystemProgram({self.name}, candidates="
                f"{len(self.plan.candidates)}, digest={self.digest[:12]})")


class LateBoundService:
    """Stand-in for a service slot the registry cannot resolve at bind time.

    Mirrors the per-FSM tier's late lookup: the canonical "no bound
    service" error (or a service added later) surfaces at call time, not
    at build time.
    """

    __slots__ = ("registry", "name")

    def __init__(self, registry, name):
        self.registry = registry
        self.name = name

    def step(self, arg_values):
        return self.registry.get(self.name).step(arg_values)


class ShadowChecker:
    """Per-edge differential oracle comparing fused codegen to per-FSM runs.

    Two clock-sensitive hooks bracket the real clocked processes:
    :meth:`pre` (registered before every controller) samples each
    candidate's state, environment and fired-count; :meth:`post`
    (registered after every adapter, before the generator waiters run)
    executes the shadow program from those samples and compares its
    predicted post-edge state/env/fired against what the real per-FSM
    processes actually did.  Candidates whose pre-edge state carries
    service calls are skipped (``OUT`` slot ``None``) — stepping a service
    twice would corrupt the trace; the testkit's separate-session matrix
    covers them.

    The two hooks add their own process runs, so a differential session's
    kernel statistics intentionally differ from the pure tiers': it is an
    oracle mode, not a conformance variant.
    """

    def __init__(self, clock, instances, labels, shadow):
        self.clock = clock
        self.instances = list(instances)
        self.labels = list(labels)
        self.shadow = shadow
        self._pre = [None] * len(self.instances)
        self._out = [None] * len(self.instances)
        self.checked_edges = 0
        self.compared_steps = 0

    def pre(self):
        if self.clock._value != 1:
            return
        pre = self._pre
        for index, instance in enumerate(self.instances):
            pre[index] = (instance.current, dict(instance.env),
                          instance.transitions_fired)

    def post(self):
        if self.clock._value != 1:
            return
        out = self._out
        for index in range(len(out)):
            out[index] = None
        try:
            self.shadow(self._pre, out)
        except Exception as exc:
            raise SimulationError(
                f"system differential: shadow execution failed at "
                f"t={self.clock.last_changed}: {exc}"
            ) from exc
        self.checked_edges += 1
        for index, instance in enumerate(self.instances):
            predicted = out[index]
            if predicted is None:
                continue
            self.compared_steps += 1
            fired = instance.transitions_fired - self._pre[index][2]
            if (predicted[0] != instance.current
                    or predicted[1] != instance.env
                    or int(predicted[2]) != fired):
                raise SimulationError(
                    f"system differential divergence at {self.labels[index]}:"
                    f" fused predicts state={predicted[0]!r}"
                    f" fired={int(predicted[2])} env={predicted[1]!r};"
                    f" per-FSM tier has state={instance.current!r}"
                    f" fired={fired} env={dict(instance.env)!r}"
                )


# ------------------------------------------------------------------- caches


_SYSTEM_CACHE = weakref.WeakKeyDictionary()  # model -> SystemProgram
_CODE_CACHE = {}                             # digest -> code object
_LINT_CACHE = weakref.WeakKeyDictionary()    # model -> tuple of error texts


def lint_errors(model):
    """Error-level lint diagnostics of *model* (weakly cached texts)."""
    cached = _LINT_CACHE.get(model)
    if cached is None:
        from repro.lint import lint_model

        report = lint_model(model)
        cached = tuple(diagnostic.legacy_text
                       for diagnostic in report.errors)
        _LINT_CACHE[model] = cached
    return cached


def compile_system(model, cache=None, lint=True):
    """The (cached) whole-system program of *model*.

    *lint* runs the static analyzer first: error-level findings refuse
    compilation (:class:`SystemCompileError`) exactly as they refuse
    sweep/server jobs — callers that already linted pass ``lint=False``.
    *cache* (an :class:`~repro.sweep.cache.ArtifactCache` or a directory
    path) persists the generated source keyed by the model digest, so a
    warm worker skips codegen.
    """
    if lint:
        errors = lint_errors(model)
        if errors:
            raise SystemCompileError(
                "lint errors refuse whole-system compilation: "
                + "; ".join(errors)
            )
    program = _SYSTEM_CACHE.get(model)
    if program is not None:
        return program
    plan = SystemPlan(model)
    digest = model_digest(model)
    source = None
    cache_key = None
    if cache is not None:
        from repro.sweep.cache import ArtifactCache

        if isinstance(cache, str):
            cache = ArtifactCache(cache)
        cache_key = ArtifactCache.key_for(
            {"kind": "syscompile", "format": SOURCE_FORMAT, "digest": digest}
        )
        payload = cache.get(cache_key)
        if payload is not None:
            source = payload.get("source")
    if source is None:
        source = generate_system_source(model, plan)
        if cache is not None:
            cache.put(cache_key, {"source": source})
    program = SystemProgram(model, plan, digest, source)
    _SYSTEM_CACHE[model] = program
    return program
