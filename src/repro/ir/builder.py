"""Fluent builder for FSMs.

The application models (Distribution subsystem, Speed Control units, the
communication controllers and services) are much more readable when written
with this builder than when instantiating :class:`State`/:class:`Transition`
directly::

    build = FsmBuilder("DISTRIBUTION")
    build.variable("POSITION", INT, 0)
    with build.state("Start") as state:
        state.do(Assign("POSITION", 0))
        state.go("SetupControlCall")
    ...
    fsm = build.build(initial="Start")
"""

import contextlib

from repro.ir.dtypes import DataType
from repro.ir.expr import wrap
from repro.ir.fsm import Fsm, ServiceCall, State, Transition, VarDecl
from repro.ir.stmt import Stmt
from repro.utils.errors import ModelError


class _StateBuilder:
    """Collects the actions and transitions of one state."""

    def __init__(self, name):
        self.name = name
        self.actions = []
        self.transitions = []

    def do(self, *statements):
        """Append entry actions to the state."""
        for statement in statements:
            if not isinstance(statement, Stmt):
                raise ModelError(f"state {self.name!r}: {statement!r} is not a statement")
            self.actions.append(statement)
        return self

    def go(self, target, when=None, actions=()):
        """Add a plain transition to *target*, optionally guarded by *when*."""
        self.transitions.append(
            Transition(target, guard=None if when is None else wrap(when),
                       actions=actions)
        )
        return self

    def call(self, service, args=(), then=None, store=None, when=None, actions=()):
        """Add a service-call transition.

        The transition fires when the called service completes (and the
        optional *when* guard holds); the FSM then moves to *then*.
        """
        if then is None:
            raise ModelError(f"state {self.name!r}: call() requires a target state 'then'")
        call = ServiceCall(service, args=args, store=store)
        self.transitions.append(
            Transition(then, guard=None if when is None else wrap(when),
                       actions=actions, call=call)
        )
        return self

    def stay(self, when=None, actions=()):
        """Add a self-loop transition (useful for polling states)."""
        return self.go(self.name, when=when, actions=actions)


class FsmBuilder:
    """Accumulates states, variables and ports, then builds an :class:`Fsm`."""

    def __init__(self, name):
        self.name = name
        self._states = []
        self._state_names = set()
        self._variables = []
        self._ports = []
        self._done_states = []
        self._result_var = None

    def variable(self, name, dtype, init=None):
        """Declare an FSM variable and return the builder for chaining."""
        if not isinstance(dtype, DataType):
            raise ModelError(f"variable {name!r}: dtype must be a DataType")
        self._variables.append(VarDecl(name, dtype, init))
        return self

    def ports(self, *names):
        """Record the ports used by the FSM (informative)."""
        for name in names:
            if name not in self._ports:
                self._ports.append(name)
        return self

    @contextlib.contextmanager
    def state(self, name, done=False):
        """Open a state definition block; yields a :class:`_StateBuilder`."""
        if name in self._state_names:
            raise ModelError(f"FSM {self.name!r}: duplicate state {name!r}")
        builder = _StateBuilder(name)
        yield builder
        self._state_names.add(name)
        self._states.append(State(name, actions=builder.actions,
                                  transitions=builder.transitions))
        if done:
            self._done_states.append(name)

    def add_state(self, name, actions=(), transitions=(), done=False):
        """Non-context-manager variant of :meth:`state`."""
        if name in self._state_names:
            raise ModelError(f"FSM {self.name!r}: duplicate state {name!r}")
        self._state_names.add(name)
        self._states.append(State(name, actions=actions, transitions=transitions))
        if done:
            self._done_states.append(name)
        return self

    def returns(self, result_var):
        """Mark *result_var* as the value returned by a service FSM."""
        self._result_var = result_var
        return self

    def build(self, initial):
        """Assemble the :class:`Fsm`."""
        return Fsm(
            self.name,
            states=self._states,
            initial=initial,
            variables=self._variables,
            ports=self._ports,
            done_states=self._done_states,
            result_var=self._result_var,
        )
