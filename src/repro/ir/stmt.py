"""Statement nodes of the behavioural IR.

Statements appear in FSM state actions and transition actions.  The set is
deliberately small — it is exactly what the paper's generated C and VHDL
views contain: variable assignments, port writes and conditionals.
"""

from repro.ir.expr import wrap
from repro.utils.ids import check_identifier


class Stmt:
    """Base class of all statement nodes."""


class Assign(Stmt):
    """``target := expr`` — assignment to an FSM variable."""

    def __init__(self, target, expr):
        self.target = check_identifier(target, "assignment target")
        self.expr = wrap(expr)

    def __repr__(self):
        return f"Assign({self.target}, {self.expr!r})"


class PortWrite(Stmt):
    """Write an expression's value to a named port.

    HW view: signal assignment; SW simulation view: ``cliOutput``; SW
    synthesis views: ``outport`` / IPC send / micro-code routine.
    """

    def __init__(self, port_name, expr):
        self.port_name = check_identifier(port_name, "port name")
        self.expr = wrap(expr)

    def __repr__(self):
        return f"PortWrite({self.port_name}, {self.expr!r})"


class If(Stmt):
    """Conditional statement with optional else branch."""

    def __init__(self, cond, then, orelse=()):
        self.cond = wrap(cond)
        self.then = list(then)
        self.orelse = list(orelse)

    def __repr__(self):
        return f"If({self.cond!r}, then={len(self.then)}, orelse={len(self.orelse)})"


class Nop(Stmt):
    """No operation; useful as a placeholder during model construction."""

    def __repr__(self):
        return "Nop()"
