"""Behavioural intermediate representation (IR).

Every behaviour in the unified model — software modules, hardware processes
and the access procedures (services) of communication units — is described by
the same FSM-structured IR, mirroring the SOLAR-style intermediate format the
paper's group used ([13] in the paper).  The IR is:

* **executed** by the co-simulation backplane (one transition per software
  activation, one transition per clock cycle in hardware) — compiled once
  into Python code objects by :mod:`repro.ir.compile` (the default tier) or
  tree-walked by :mod:`repro.ir.interp` (the oracle tier),
* **emitted** as C by :mod:`repro.swc` (SW simulation / SW synthesis views)
  and as VHDL by :mod:`repro.hdl` (HW view),
* **synthesized** by :mod:`repro.cosyn.hls` into an FSMD and RTL netlist.

Having one source of truth for behaviour is what makes the co-simulation and
co-synthesis results coherent.
"""

from repro.ir.dtypes import (
    BitType,
    BoolType,
    IntType,
    BitVectorType,
    EnumType,
    BIT,
    BOOL,
    INT,
)
from repro.ir.expr import (
    Expr,
    Const,
    Var,
    PortRef,
    BinOp,
    UnOp,
    const,
    var,
    port,
)
from repro.ir.stmt import Stmt, Assign, PortWrite, If, Nop
from repro.ir.fsm import Fsm, State, Transition, ServiceCall, VarDecl
from repro.ir.builder import FsmBuilder
from repro.ir.interp import (
    DEFAULT_FSM_MODE,
    FSM_MODES,
    FsmInstance,
    evaluate,
    execute,
)
from repro.ir.compile import CompileError, CompiledFsm, compile_fsm
from repro.ir.printer import format_fsm, format_expr, format_stmt
from repro.ir.transform import (
    constant_fold,
    reachable_states,
    remove_unreachable_states,
    check_fsm,
)

__all__ = [
    "BitType",
    "BoolType",
    "IntType",
    "BitVectorType",
    "EnumType",
    "BIT",
    "BOOL",
    "INT",
    "Expr",
    "Const",
    "Var",
    "PortRef",
    "BinOp",
    "UnOp",
    "const",
    "var",
    "port",
    "Stmt",
    "Assign",
    "PortWrite",
    "If",
    "Nop",
    "Fsm",
    "State",
    "Transition",
    "ServiceCall",
    "VarDecl",
    "FsmBuilder",
    "FsmInstance",
    "DEFAULT_FSM_MODE",
    "FSM_MODES",
    "CompileError",
    "CompiledFsm",
    "compile_fsm",
    "evaluate",
    "execute",
    "format_fsm",
    "format_expr",
    "format_stmt",
    "constant_fold",
    "reachable_states",
    "remove_unreachable_states",
    "check_fsm",
    "SystemCompileError",
    "SystemPlan",
    "SystemProgram",
    "compile_system",
    "generate_system_source",
    "model_digest",
    "system_spec",
]

_SYSCOMPILE_EXPORTS = frozenset({
    "SystemCompileError", "SystemPlan", "SystemProgram", "compile_system",
    "generate_system_source", "model_digest", "system_spec",
})


def __getattr__(name):
    # The whole-system compiler is exported lazily: importing it pulls in
    # the codegen machinery, which most users of the IR data model (the
    # builder, the printer, the transforms) never need.
    if name in _SYSCOMPILE_EXPORTS:
        from repro.ir import syscompile
        return getattr(syscompile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
