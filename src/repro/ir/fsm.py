"""Finite-state machines: the behavioural unit of the unified model.

The paper structures every behaviour as an FSM:

* software modules execute **one transition per activation** ("each time a
  software component is activated ... only one transition is executed"),
* hardware processes execute one transition per clock cycle,
* access procedures (services) of communication units are FSMs stepped by
  their caller until they reach a *done* state — that is why the generated C
  views return ``DONE`` and the caller writes
  ``if (SetupControl()) NextState = Step;``.

The classes below capture that structure.
"""

from repro.ir.dtypes import DataType
from repro.ir.expr import wrap
from repro.ir.stmt import Stmt
from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class VarDecl:
    """Declaration of an FSM variable (name, type, initial value)."""

    def __init__(self, name, dtype, init=None):
        self.name = check_identifier(name, "variable name")
        if not isinstance(dtype, DataType):
            raise ModelError(f"variable {name!r}: dtype must be a DataType, got {dtype!r}")
        self.dtype = dtype
        #: whether the declaration carried an explicit initial value (the
        #: lint use-before-init pass trusts explicit initialisers)
        self.explicit_init = init is not None
        self.init = dtype.check(init) if init is not None else dtype.default

    def __repr__(self):
        return f"VarDecl({self.name}, {self.dtype!r}, init={self.init!r})"


class ServiceCall:
    """Invocation of a communication-unit service from a transition.

    Parameters
    ----------
    service:
        Name of the access procedure (e.g. ``"MotorPosition"``).
    args:
        Expressions evaluated in the caller's environment and passed to the
        service's parameters at every step.
    store:
        Optional variable name of the caller receiving the service's result
        value once the call completes.
    """

    def __init__(self, service, args=(), store=None):
        self.service = check_identifier(service, "service name")
        self.args = tuple(wrap(arg) for arg in args)
        self.store = check_identifier(store, "result variable") if store else None

    def __repr__(self):
        return f"ServiceCall({self.service}, args={len(self.args)}, store={self.store})"


class Transition:
    """A guarded transition of an FSM state.

    Exactly one of the following shapes is used:

    * plain transition — optional *guard* expression; taken when the guard is
      true (or unconditionally when absent);
    * service-call transition — carries a :class:`ServiceCall`; each FSM step
      advances the callee by one step and the transition fires when the
      callee reports completion (and the optional *guard*, evaluated with the
      call's result bound, is true).
    """

    def __init__(self, target, guard=None, actions=(), call=None):
        self.target = check_identifier(target, "transition target")
        self.guard = wrap(guard) if guard is not None else None
        self.actions = _check_stmts(actions)
        if call is not None and not isinstance(call, ServiceCall):
            raise ModelError(f"call must be a ServiceCall, got {call!r}")
        self.call = call

    def __repr__(self):
        parts = [f"-> {self.target}"]
        if self.call:
            parts.append(f"call {self.call.service}")
        if self.guard is not None:
            parts.append("guarded")
        return f"Transition({', '.join(parts)})"


class State:
    """A named FSM state with entry actions and ordered transitions."""

    def __init__(self, name, actions=(), transitions=()):
        self.name = check_identifier(name, "state name")
        self.actions = _check_stmts(actions)
        self.transitions = list(transitions)
        for transition in self.transitions:
            if not isinstance(transition, Transition):
                raise ModelError(f"state {name!r}: {transition!r} is not a Transition")

    def add_transition(self, transition):
        self.transitions.append(transition)
        return transition

    def __repr__(self):
        return f"State({self.name}, actions={len(self.actions)}, transitions={len(self.transitions)})"


class Fsm:
    """A complete finite-state machine.

    Parameters
    ----------
    name:
        FSM name (becomes the C function / VHDL process name).
    states:
        Iterable of :class:`State`; order is preserved for code generation.
    initial:
        Name of the initial state.
    variables:
        Iterable of :class:`VarDecl`.
    ports:
        Names of the ports this FSM reads or writes (informative; the
        authoritative port list lives on the owning module or service).
    done_states:
        States that signal completion when entered; used by service FSMs and
        by software modules that terminate.  Entering a done state makes the
        step report ``done=True``; service FSMs then reset to the initial
        state ready for the next invocation.
    result_var:
        For service FSMs: the variable whose value is returned to the caller
        on completion.
    """

    def __init__(self, name, states, initial, variables=(), ports=(),
                 done_states=(), result_var=None):
        self.name = check_identifier(name, "FSM name")
        self.states = {}
        self.state_order = []
        for state in states:
            if not isinstance(state, State):
                raise ModelError(f"FSM {name!r}: {state!r} is not a State")
            if state.name in self.states:
                raise ModelError(f"FSM {name!r}: duplicate state {state.name!r}")
            self.states[state.name] = state
            self.state_order.append(state.name)
        if initial not in self.states:
            raise ModelError(f"FSM {name!r}: initial state {initial!r} not defined")
        self.initial = initial
        self.variables = {}
        for decl in variables:
            if not isinstance(decl, VarDecl):
                raise ModelError(f"FSM {name!r}: {decl!r} is not a VarDecl")
            if decl.name in self.variables:
                raise ModelError(f"FSM {name!r}: duplicate variable {decl.name!r}")
            self.variables[decl.name] = decl
        self.ports = tuple(ports)
        self.done_states = frozenset(done_states)
        for done in self.done_states:
            if done not in self.states:
                raise ModelError(f"FSM {name!r}: done state {done!r} not defined")
        self.result_var = (
            check_identifier(result_var, "result variable") if result_var else None
        )
        if self.result_var and self.result_var not in self.variables:
            raise ModelError(
                f"FSM {name!r}: result variable {self.result_var!r} is not declared"
            )

    # ------------------------------------------------------------------ query

    def state(self, name):
        try:
            return self.states[name]
        except KeyError:
            raise ModelError(f"FSM {self.name!r}: unknown state {name!r}") from None

    def iter_states(self):
        """Yield states in declaration order."""
        for name in self.state_order:
            yield self.states[name]

    def service_calls(self):
        """Return the distinct service names invoked by this FSM."""
        names = []
        for state in self.iter_states():
            for transition in state.transitions:
                if transition.call and transition.call.service not in names:
                    names.append(transition.call.service)
        return names

    def written_ports(self):
        """Names of ports written by any statement of the FSM."""
        from repro.ir.visitor import iter_statements
        names = []
        for stmt in iter_statements(self):
            if type(stmt).__name__ == "PortWrite" and stmt.port_name not in names:
                names.append(stmt.port_name)
        return names

    def read_ports(self):
        """Names of ports read by any expression of the FSM."""
        from repro.ir.visitor import iter_expressions
        names = []
        for expr in iter_expressions(self):
            if type(expr).__name__ == "PortRef" and expr.port_name not in names:
                names.append(expr.port_name)
        return names

    def __repr__(self):
        return f"Fsm({self.name}, states={len(self.states)}, initial={self.initial})"


def _check_stmts(statements):
    statements = list(statements)
    for statement in statements:
        if not isinstance(statement, Stmt):
            raise ModelError(f"{statement!r} is not an IR statement")
    return statements
