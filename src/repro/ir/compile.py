"""The compiled execution tier of the behavioural IR.

:mod:`repro.ir.interp` executes FSMs by walking the expression tree through
``isinstance``-dispatched ``evaluate``/``execute`` — one Python-level
recursion per IR node, every transition, every delta cycle.  That is the
right *oracle* (small, obviously correct) but the wrong hot path: the
co-simulation backplane steps thousands of FSM instances per simulated
microsecond.

This module translates an :class:`~repro.ir.fsm.Fsm` **once** into plain
Python code objects:

* every expression becomes Python source with the interpreter's exact
  semantics (truncating division, eager ``and``/``or`` with 0/1 results,
  integer comparisons) — ``env[...]``/``ports.read(...)`` access compiled
  to native bytecode instead of per-node dispatch,
* every state's action list becomes one function ``(env, ports) -> None``,
* a state whose transitions carry no service calls gets a single
  **stepper** ``(env, ports) -> (next_state, fired)`` inlining actions,
  guards and transition actions into one code object,
* service-call transitions keep a thin driver loop (the call handler is
  user code), with guard / actions / argument evaluation compiled.

The generated program is observably **byte-identical** to the interpreter:
same values, same port read/write sequence (``and``/``or`` do not
short-circuit, exactly like ``evaluate``), same exception types and
messages, same :class:`~repro.ir.interp.StepResult` stream.  The
differential suite in ``tests/test_ir_compile.py`` and the conformance
kit's ``--fsm-mode`` pin that equivalence.

Programs are cached per :class:`~repro.ir.fsm.Fsm` in a weak-key map and
shared by every :class:`~repro.ir.interp.FsmInstance` of that FSM; the
cache assumes the FSM is not structurally mutated (``add_transition``)
after its first instance is built — call :func:`compile_fsm` with
``force=True`` after such a mutation.
"""

import weakref

from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.interp import _int_div, _int_mod
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.utils.errors import SimulationError


class CompileError(SimulationError):
    """The FSM contains a node the compile tier cannot translate."""


def _eager_and(a, b):
    # int(bool(a) and bool(b)) with both operands already evaluated.
    return 1 if a and b else 0


def _eager_or(a, b):
    return 1 if a or b else 0


#: Globals shared by every generated code object.  The helpers reproduce the
#: interpreter's operator semantics exactly (see ``_BINARY_FUNCS``).
_GENERATED_GLOBALS = {
    "SimulationError": SimulationError,
    "_div": _int_div,
    "_mod": _int_mod,
    "_and": _eager_and,
    "_or": _eager_or,
    "min": min,
    "max": max,
    "abs": abs,
    "bool": bool,
}

#: Binary operators emitted as native Python operators.  Comparisons wrap in
#: ``1 if .. else 0`` to match the interpreter's integer results; both
#: operands of every operator are evaluated (Python evaluates both sides of
#: ``+``/``==`` etc., and ``and``/``or``/``div``/``mod`` go through eager
#: helper calls), preserving the interpreter's port-read sequence.
_BINOP_TEMPLATES = {
    "add": "({} + {})",
    "sub": "({} - {})",
    "mul": "({} * {})",
    "div": "_div({}, {})",
    "mod": "_mod({}, {})",
    "eq": "(1 if {} == {} else 0)",
    "ne": "(1 if {} != {} else 0)",
    "lt": "(1 if {} < {} else 0)",
    "le": "(1 if {} <= {} else 0)",
    "gt": "(1 if {} > {} else 0)",
    "ge": "(1 if {} >= {} else 0)",
    "and": "_and({}, {})",
    "or": "_or({}, {})",
    "xor": "(1 if bool({}) != bool({}) else 0)",
    "min": "min({}, {})",
    "max": "max({}, {})",
}

_UNOP_TEMPLATES = {
    "not": "(0 if {} else 1)",
    "neg": "(- {})",
    "abs": "abs({})",
}

#: Exception epilogue of every generated function.  A ``KeyError`` is only
#: reported as the interpreter's ``undefined variable`` error when it names
#: a variable this code reads *and* that variable really is absent from the
#: environment — a ``KeyError`` escaping a user-supplied port accessor (or
#: call handler, on the driver path) propagates unchanged, exactly as it
#: does through the interpreted tier.
_EXCEPT_SUFFIX = (
    "    except KeyError as exc:\n"
    "        _key = exc.args[0] if exc.args else None\n"
    "        if _key in _env_reads and _key not in env:\n"
    "            raise SimulationError('undefined variable %r' % (_key,)) "
    "from None\n"
    "        raise"
)


def _expr_var_reads(expr, names):
    """Collect the variable names read by *expr* into *names*."""
    if isinstance(expr, Var):
        names.add(expr.name)
    elif isinstance(expr, BinOp):
        _expr_var_reads(expr.left, names)
        _expr_var_reads(expr.right, names)
    elif isinstance(expr, UnOp):
        _expr_var_reads(expr.operand, names)


def _stmt_var_reads(statements, names):
    """Collect the variable names read by a statement list into *names*."""
    for stmt in statements:
        if isinstance(stmt, (Assign, PortWrite)):
            _expr_var_reads(stmt.expr, names)
        elif isinstance(stmt, If):
            _expr_var_reads(stmt.cond, names)
            _stmt_var_reads(stmt.then, names)
            _stmt_var_reads(stmt.orelse, names)


def expr_source(expr):
    """Python source with the exact value semantics of :func:`evaluate`.

    Constants are emitted as literals (CPython's peephole folds constant
    subtrees for free); variable reads become ``env[...]`` — the enclosing
    generated function converts a ``KeyError`` into the interpreter's
    ``undefined variable`` :class:`SimulationError`.
    """
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Var):
        return f"env[{expr.name!r}]"
    if isinstance(expr, PortRef):
        return f"ports.read({expr.port_name!r})"
    if isinstance(expr, BinOp):
        return _BINOP_TEMPLATES[expr.op].format(
            expr_source(expr.left), expr_source(expr.right)
        )
    if isinstance(expr, UnOp):
        return _UNOP_TEMPLATES[expr.op].format(expr_source(expr.operand))
    raise CompileError(f"cannot compile expression {expr!r}")


def _emit_stmts(statements, lines, depth):
    """Append the statements' source at *depth* (no ``pass`` padding)."""
    pad = "    " * depth
    for stmt in statements:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}env[{stmt.target!r}] = {expr_source(stmt.expr)}")
        elif isinstance(stmt, PortWrite):
            lines.append(
                f"{pad}ports.write({stmt.port_name!r}, {expr_source(stmt.expr)})"
            )
        elif isinstance(stmt, If):
            lines.append(f"{pad}if {expr_source(stmt.cond)}:")
            _emit_block(stmt.then, lines, depth + 1)
            if stmt.orelse:
                lines.append(f"{pad}else:")
                _emit_block(stmt.orelse, lines, depth + 1)
        elif isinstance(stmt, Nop):
            pass
        else:
            raise CompileError(f"cannot compile statement {stmt!r}")


def _emit_block(statements, lines, depth):
    """Like :func:`_emit_stmts` but never leaves an empty suite behind."""
    before = len(lines)
    _emit_stmts(statements, lines, depth)
    if len(lines) == before:
        lines.append("    " * depth + "pass")


def _build(name, lines, env_reads):
    """``exec`` the generated def and return (function, source)."""
    source = "\n".join(lines)
    namespace = dict(_GENERATED_GLOBALS)
    namespace["_env_reads"] = frozenset(env_reads)
    exec(compile(source, f"<ir:{name}>", "exec"), namespace)  # noqa: S102
    return namespace[name], source


def compile_expr_fn(expr, name="_ir_expr"):
    """Compile one expression into ``fn(env, ports) -> value``."""
    lines = [
        f"def {name}(env, ports):",
        "    try:",
        f"        return {expr_source(expr)}",
        _EXCEPT_SUFFIX,
    ]
    reads = set()
    _expr_var_reads(expr, reads)
    return _build(name, lines, reads)[0]


def compile_block_fn(statements, name="_ir_block"):
    """Compile a statement list into ``fn(env, ports)``; None when empty."""
    lines = [f"def {name}(env, ports):", "    try:"]
    before = len(lines)
    _emit_stmts(statements, lines, 2)
    if len(lines) == before:
        return None
    lines.append(_EXCEPT_SUFFIX)
    reads = set()
    _stmt_var_reads(statements, reads)
    return _build(name, lines, reads)[0]


def compile_args_fn(args, name="_ir_args"):
    """Compile service-call arguments into ``fn(env, ports) -> list``."""
    if not args:
        return None
    items = ", ".join(expr_source(arg) for arg in args)
    lines = [
        f"def {name}(env, ports):",
        "    try:",
        f"        return [{items}]",
        _EXCEPT_SUFFIX,
    ]
    reads = set()
    for arg in args:
        _expr_var_reads(arg, reads)
    return _build(name, lines, reads)[0]


class CompiledTransition:
    """Driver-loop form of one transition (used when the state has calls)."""

    __slots__ = ("target", "guard", "actions", "call", "service", "store", "args")

    def __init__(self, transition, prefix):
        self.target = transition.target
        self.guard = (
            compile_expr_fn(transition.guard, f"{prefix}_guard")
            if transition.guard is not None else None
        )
        self.actions = compile_block_fn(transition.actions, f"{prefix}_actions")
        call = transition.call
        self.call = call
        if call is not None:
            self.service = call.service
            self.store = call.store
            self.args = compile_args_fn(call.args, f"{prefix}_args")
        else:
            self.service = None
            self.store = None
            self.args = None


class CompiledState:
    """One state of a compiled program.

    ``stepper`` is the single-code-object fast path ``(env, ports) ->
    (next_state, fired)`` for states without service calls; call states set
    it to ``None`` and are driven through ``actions``/``transitions`` by
    :meth:`FsmInstance._run_call_transitions`.
    """

    __slots__ = ("name", "stepper", "actions", "transitions", "source")

    def __init__(self, fsm, state):
        self.name = state.name
        prefix = f"_ir__{fsm.name}__{state.name}"
        if any(t.call is not None for t in state.transitions):
            self.stepper = None
            self.source = None
            self.actions = compile_block_fn(state.actions, f"{prefix}_entry")
            self.transitions = tuple(
                CompiledTransition(transition, f"{prefix}_t{index}")
                for index, transition in enumerate(state.transitions)
            )
        else:
            self.actions = None
            self.transitions = ()
            self.stepper, self.source = self._build_stepper(state, prefix)

    @staticmethod
    def _build_stepper(state, prefix):
        name = f"{prefix}_step"
        lines = [f"def {name}(env, ports):", "    try:"]
        reads = set()
        _stmt_var_reads(state.actions, reads)
        _emit_stmts(state.actions, lines, 2)
        exhaustive = False
        for transition in state.transitions:
            _stmt_var_reads(transition.actions, reads)
            if transition.guard is not None:
                _expr_var_reads(transition.guard, reads)
                lines.append(f"        if {expr_source(transition.guard)}:")
                _emit_stmts(transition.actions, lines, 3)
                lines.append(f"            return ({transition.target!r}, True)")
            else:
                _emit_stmts(transition.actions, lines, 2)
                lines.append(f"        return ({transition.target!r}, True)")
                exhaustive = True
                break  # later transitions are unreachable, as in the oracle
        if not exhaustive:
            lines.append(f"        return ({state.name!r}, False)")
        lines.append(_EXCEPT_SUFFIX)
        return _build(name, lines, reads)


class CompiledFsm:
    """The per-FSM compiled program, shared by all its instances."""

    __slots__ = ("name", "initial", "done_states", "result_var", "states",
                 "__weakref__")

    def __init__(self, fsm):
        self.name = fsm.name
        self.initial = fsm.initial
        self.done_states = fsm.done_states
        self.result_var = fsm.result_var
        self.states = {
            state.name: CompiledState(fsm, state) for state in fsm.iter_states()
        }

    def __repr__(self):
        return f"CompiledFsm({self.name}, states={len(self.states)})"


#: fsm -> CompiledFsm.  Weak keys keep FSM descriptions collectable and the
#: Fsm objects free of unpicklable code-object attributes.
_PROGRAM_CACHE = weakref.WeakKeyDictionary()


def compile_fsm(fsm, force=False):
    """Return the (cached) compiled program of *fsm*.

    Raises :class:`CompileError` when the FSM contains expression or
    statement nodes outside the core IR; callers (``FsmInstance``) fall back
    to the interpreter in that case.  *force* recompiles after a structural
    mutation of the FSM.
    """
    if not force:
        program = _PROGRAM_CACHE.get(fsm)
        if program is not None:
            return program
    program = CompiledFsm(fsm)
    _PROGRAM_CACHE[fsm] = program
    return program
