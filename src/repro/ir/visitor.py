"""Generic traversal helpers over FSMs, statements and expressions."""

from repro.ir.expr import Expr
from repro.ir.stmt import Assign, If, Nop, PortWrite


def iter_expr_tree(expr):
    """Yield *expr* and every sub-expression, depth first."""
    yield expr
    for child in expr.children():
        yield from iter_expr_tree(child)


def iter_stmt_expressions(stmt):
    """Yield every expression appearing in a statement."""
    if isinstance(stmt, Assign):
        yield from iter_expr_tree(stmt.expr)
    elif isinstance(stmt, PortWrite):
        yield from iter_expr_tree(stmt.expr)
    elif isinstance(stmt, If):
        yield from iter_expr_tree(stmt.cond)
        for inner in stmt.then:
            yield from iter_stmt_expressions(inner)
        for inner in stmt.orelse:
            yield from iter_stmt_expressions(inner)
    elif isinstance(stmt, Nop):
        return
    else:
        raise TypeError(f"unknown statement {stmt!r}")


def iter_stmt_tree(stmt):
    """Yield *stmt* and every nested statement."""
    yield stmt
    if isinstance(stmt, If):
        for inner in stmt.then:
            yield from iter_stmt_tree(inner)
        for inner in stmt.orelse:
            yield from iter_stmt_tree(inner)


def iter_statements(fsm):
    """Yield every statement of every state and transition of *fsm*."""
    for state in fsm.iter_states():
        for stmt in state.actions:
            yield from iter_stmt_tree(stmt)
        for transition in state.transitions:
            for stmt in transition.actions:
                yield from iter_stmt_tree(stmt)


def iter_expressions(fsm):
    """Yield every expression of *fsm*: actions, guards and call arguments."""
    for state in fsm.iter_states():
        for stmt in state.actions:
            yield from iter_stmt_expressions(stmt)
        for transition in state.transitions:
            if transition.guard is not None:
                yield from iter_expr_tree(transition.guard)
            for stmt in transition.actions:
                yield from iter_stmt_expressions(stmt)
            if transition.call is not None:
                for arg in transition.call.args:
                    yield from iter_expr_tree(arg)


def expressions_of_kind(fsm, kind):
    """Return all expressions of *fsm* that are instances of *kind*."""
    if not issubclass(kind, Expr):
        raise TypeError("kind must be an Expr subclass")
    return [expr for expr in iter_expressions(fsm) if isinstance(expr, kind)]


def variables_read(fsm):
    """Names of variables read anywhere in the FSM."""
    from repro.ir.expr import Var
    return sorted({expr.name for expr in expressions_of_kind(fsm, Var)})


def variables_written(fsm):
    """Names of variables assigned anywhere in the FSM."""
    names = set()
    for stmt in iter_statements(fsm):
        if isinstance(stmt, Assign):
            names.add(stmt.target)
    for state in fsm.iter_states():
        for transition in state.transitions:
            if transition.call is not None and transition.call.store:
                names.add(transition.call.store)
    return sorted(names)
