"""IR interpretation.

The co-simulation backplane executes every behaviour by interpreting its FSM:

* :func:`evaluate` / :func:`execute` — expression evaluation and statement
  execution against a variable environment and a *port accessor*,
* :class:`FsmInstance` — the run-time state of one FSM (current state,
  variable values), advanced one transition per :meth:`FsmInstance.step`.

A *port accessor* is any object with ``read(port_name)`` and
``write(port_name, value)``.  The same FSM runs unmodified against very
different accessors: simulator signals (HW view), the C-language-interface
adapter (SW simulation view), the ISA-bus model (SW synthesis view executed
on the platform model) — which is precisely the paper's multi-view idea.
"""

from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.utils.errors import SimulationError

_BINARY_FUNCS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: _int_div(a, b),
    "mod": lambda a, b: _int_mod(a, b),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
    "xor": lambda a, b: int(bool(a) != bool(b)),
    "min": min,
    "max": max,
}

_UNARY_FUNCS = {
    "not": lambda a: int(not a),
    "neg": lambda a: -a,
    "abs": abs,
}


def _int_div(a, b):
    if b == 0:
        raise SimulationError("division by zero in IR expression")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _int_mod(a, b):
    if b == 0:
        raise SimulationError("modulo by zero in IR expression")
    return a - b * _int_div(a, b)


class NullPortAccessor:
    """Port accessor that refuses all accesses; used for pure FSMs."""

    def read(self, port_name):
        raise SimulationError(f"FSM read port {port_name!r} but has no port accessor")

    def write(self, port_name, value):
        raise SimulationError(f"FSM wrote port {port_name!r} but has no port accessor")


class DictPortAccessor:
    """Port accessor backed by a plain dictionary (handy in unit tests)."""

    def __init__(self, values=None):
        self.values = dict(values or {})
        self.writes = []

    def read(self, port_name):
        return self.values.get(port_name, 0)

    def write(self, port_name, value):
        self.values[port_name] = value
        self.writes.append((port_name, value))


def evaluate(expr, env, ports=None):
    """Evaluate an IR expression.

    *env* maps variable names to values; *ports* is a port accessor used for
    :class:`PortRef` reads.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise SimulationError(f"undefined variable {expr.name!r}") from None
    if isinstance(expr, PortRef):
        accessor = ports or NullPortAccessor()
        return accessor.read(expr.port_name)
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, env, ports)
        right = evaluate(expr.right, env, ports)
        return _BINARY_FUNCS[expr.op](left, right)
    if isinstance(expr, UnOp):
        return _UNARY_FUNCS[expr.op](evaluate(expr.operand, env, ports))
    raise SimulationError(f"cannot evaluate {expr!r}")


def execute(stmt, env, ports=None):
    """Execute an IR statement, mutating *env* and writing ports as needed."""
    if isinstance(stmt, Assign):
        env[stmt.target] = evaluate(stmt.expr, env, ports)
    elif isinstance(stmt, PortWrite):
        accessor = ports or NullPortAccessor()
        accessor.write(stmt.port_name, evaluate(stmt.expr, env, ports))
    elif isinstance(stmt, If):
        branch = stmt.then if evaluate(stmt.cond, env, ports) else stmt.orelse
        for inner in branch:
            execute(inner, env, ports)
    elif isinstance(stmt, Nop):
        pass
    else:
        raise SimulationError(f"cannot execute {stmt!r}")


class StepResult:
    """Outcome of one FSM step."""

    def __init__(self, from_state, to_state, fired, done, result=None, called=None):
        self.from_state = from_state
        self.to_state = to_state
        self.fired = fired
        self.done = done
        self.result = result
        self.called = called

    def __repr__(self):
        arrow = f"{self.from_state}->{self.to_state}" if self.fired else self.from_state
        return f"StepResult({arrow}, done={self.done})"


class FsmInstance:
    """Run-time instance of an :class:`~repro.ir.fsm.Fsm`.

    Parameters
    ----------
    fsm:
        The FSM description to execute.
    ports:
        Port accessor used by ``PortRef`` / ``PortWrite``.
    call_handler:
        Callable ``call_handler(service_call, arg_values) -> (done, value)``
        advancing the called service by one step; required only when the FSM
        contains service-call transitions.
    reset_on_done:
        When true (service FSMs), reaching a done state resets the instance
        to the initial state so the next invocation starts fresh.
    trace:
        When true, every step appends a :class:`StepResult` to :attr:`history`.
    """

    def __init__(self, fsm, ports=None, call_handler=None, reset_on_done=False,
                 trace=False):
        self.fsm = fsm
        self.ports = ports or NullPortAccessor()
        self.call_handler = call_handler
        self.reset_on_done = reset_on_done
        self.trace = trace
        self.env = {}
        self.current = fsm.initial
        self.steps = 0
        self.transitions_fired = 0
        self.history = []
        self.reset()

    def reset(self):
        """Restore initial state and variable values."""
        self.current = self.fsm.initial
        self.env = {name: decl.init for name, decl in self.fsm.variables.items()}
        self.steps = 0
        self.transitions_fired = 0
        self.history = []

    @property
    def done(self):
        """True when the current state is a done state."""
        return self.current in self.fsm.done_states

    def step(self, args=None):
        """Execute one activation: state actions then at most one transition."""
        if args:
            self.env.update(args)
        self.steps += 1
        from_state = self.current
        state = self.fsm.state(self.current)
        for stmt in state.actions:
            execute(stmt, self.env, self.ports)

        fired = None
        called = None
        for transition in state.transitions:
            ready = True
            if transition.call is not None:
                called = transition.call.service
                if self.call_handler is None:
                    raise SimulationError(
                        f"FSM {self.fsm.name!r} calls service "
                        f"{transition.call.service!r} but no call handler is bound"
                    )
                arg_values = [
                    evaluate(arg, self.env, self.ports) for arg in transition.call.args
                ]
                call_done, value = self.call_handler(transition.call, arg_values)
                if call_done and transition.call.store:
                    self.env[transition.call.store] = value
                ready = call_done
            if not ready:
                continue
            if transition.guard is not None and not evaluate(
                transition.guard, self.env, self.ports
            ):
                continue
            for stmt in transition.actions:
                execute(stmt, self.env, self.ports)
            self.current = transition.target
            fired = transition
            self.transitions_fired += 1
            break

        done = self.current in self.fsm.done_states
        result = None
        if done and self.fsm.result_var:
            result = self.env.get(self.fsm.result_var)
        step_result = StepResult(
            from_state, self.current, fired is not None, done, result, called
        )
        if self.trace:
            self.history.append(step_result)
        if done and self.reset_on_done:
            self.current = self.fsm.initial
        return step_result

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable copy of the instance's run-time state.

        The FSM description, port accessor and call handler are structural
        (rebuilt when the owning session is rebuilt); only current state,
        variables, counters and the step history travel in a checkpoint.
        """
        return {
            "fsm": self.fsm.name,
            "current": self.current,
            "env": dict(self.env),
            "steps": self.steps,
            "transitions_fired": self.transitions_fired,
            "history": [
                (result.from_state, result.to_state, result.fired,
                 result.done, result.result, result.called)
                for result in self.history
            ],
        }

    def restore_state(self, state):
        """Overwrite run-time state with a :meth:`capture_state` copy."""
        if state["fsm"] != self.fsm.name:
            raise SimulationError(
                f"cannot restore FSM state of {state['fsm']!r} "
                f"into instance of {self.fsm.name!r}"
            )
        self.current = state["current"]
        self.env = dict(state["env"])
        self.steps = state["steps"]
        self.transitions_fired = state["transitions_fired"]
        self.history = [StepResult(*entry) for entry in state["history"]]

    def run_to_done(self, max_steps=10_000, args=None):
        """Step repeatedly until a done state is reached (testing helper)."""
        for _ in range(max_steps):
            result = self.step(args)
            if result.done:
                return result
        raise SimulationError(
            f"FSM {self.fsm.name!r} did not finish within {max_steps} steps"
        )

    def __repr__(self):
        return f"FsmInstance({self.fsm.name}, state={self.current}, steps={self.steps})"
