"""Human-readable rendering of IR objects (used in reports and debugging)."""

from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.stmt import Assign, If, Nop, PortWrite

_BIN_SYMBOLS = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "mod",
    "eq": "=", "ne": "/=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "and": "and", "or": "or", "xor": "xor", "min": "min", "max": "max",
}

_UNARY_SYMBOLS = {"not": "not", "neg": "-", "abs": "abs"}


def format_expr(expr):
    """Render an expression in a VHDL-flavoured infix syntax."""
    if isinstance(expr, Const):
        return repr(expr.value) if isinstance(expr.value, str) else str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, PortRef):
        return expr.port_name
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({format_expr(expr.left)}, {format_expr(expr.right)})"
        return f"({format_expr(expr.left)} {_BIN_SYMBOLS[expr.op]} {format_expr(expr.right)})"
    if isinstance(expr, UnOp):
        return f"{_UNARY_SYMBOLS[expr.op]}({format_expr(expr.operand)})"
    return repr(expr)


def format_stmt(stmt, indent=0):
    """Render a statement (possibly multi-line for conditionals)."""
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.target} := {format_expr(stmt.expr)};"
    if isinstance(stmt, PortWrite):
        return f"{pad}{stmt.port_name} <= {format_expr(stmt.expr)};"
    if isinstance(stmt, If):
        lines = [f"{pad}if {format_expr(stmt.cond)} then"]
        lines.extend(format_stmt(inner, indent + 1) for inner in stmt.then)
        if stmt.orelse:
            lines.append(f"{pad}else")
            lines.extend(format_stmt(inner, indent + 1) for inner in stmt.orelse)
        lines.append(f"{pad}end if;")
        return "\n".join(lines)
    if isinstance(stmt, Nop):
        return f"{pad}null;"
    return f"{pad}{stmt!r}"


def format_transition(transition, indent=0):
    pad = "  " * indent
    parts = []
    if transition.call is not None:
        args = ", ".join(format_expr(arg) for arg in transition.call.args)
        call_text = f"call {transition.call.service}({args})"
        if transition.call.store:
            call_text += f" -> {transition.call.store}"
        parts.append(call_text)
    if transition.guard is not None:
        parts.append(f"when {format_expr(transition.guard)}")
    head = " ".join(parts) if parts else "always"
    lines = [f"{pad}{head} => goto {transition.target}"]
    lines.extend(format_stmt(stmt, indent + 1) for stmt in transition.actions)
    return "\n".join(lines)


def format_fsm(fsm):
    """Render a complete FSM as indented text."""
    lines = [f"fsm {fsm.name} (initial: {fsm.initial})"]
    if fsm.variables:
        lines.append("  variables:")
        for decl in fsm.variables.values():
            lines.append(f"    {decl.name} : {decl.dtype!r} := {decl.init!r}")
    for state in fsm.iter_states():
        marker = " [done]" if state.name in fsm.done_states else ""
        lines.append(f"  state {state.name}{marker}:")
        for stmt in state.actions:
            lines.append(format_stmt(stmt, indent=2))
        for transition in state.transitions:
            lines.append(format_transition(transition, indent=2))
    return "\n".join(lines)
