"""IR transformations and structural checks."""

from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.fsm import Fsm, State, Transition
from repro.ir.interp import _BINARY_FUNCS, _UNARY_FUNCS
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.ir.visitor import variables_read, variables_written


def constant_fold(expr):
    """Return an equivalent expression with constant sub-trees folded."""
    if isinstance(expr, (Const, Var, PortRef)):
        return expr
    if isinstance(expr, BinOp):
        left = constant_fold(expr.left)
        right = constant_fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const) and not (
            isinstance(left.value, str) or isinstance(right.value, str)
        ):
            try:
                return Const(_BINARY_FUNCS[expr.op](left.value, right.value))
            except Exception:  # division by zero etc. — leave for runtime
                return BinOp(expr.op, left, right)
        if isinstance(left.value if isinstance(left, Const) else None, str) or isinstance(
            right.value if isinstance(right, Const) else None, str
        ):
            if isinstance(left, Const) and isinstance(right, Const) and expr.op in ("eq", "ne"):
                return Const(_BINARY_FUNCS[expr.op](left.value, right.value))
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnOp):
        operand = constant_fold(expr.operand)
        if isinstance(operand, Const) and not isinstance(operand.value, str):
            return Const(_UNARY_FUNCS[expr.op](operand.value))
        return UnOp(expr.op, operand)
    return expr


def fold_statement(stmt):
    """Constant-fold every expression inside a statement."""
    if isinstance(stmt, Assign):
        return Assign(stmt.target, constant_fold(stmt.expr))
    if isinstance(stmt, PortWrite):
        return PortWrite(stmt.port_name, constant_fold(stmt.expr))
    if isinstance(stmt, If):
        cond = constant_fold(stmt.cond)
        then = [fold_statement(inner) for inner in stmt.then]
        orelse = [fold_statement(inner) for inner in stmt.orelse]
        if isinstance(cond, Const):
            picked = then if cond.value else orelse
            if not picked:
                return Nop()
            if len(picked) == 1:
                return picked[0]
        return If(cond, then, orelse)
    return stmt


def fold_fsm(fsm):
    """Return a new FSM with all expressions constant-folded."""
    states = []
    for state in fsm.iter_states():
        transitions = [
            Transition(
                transition.target,
                guard=None if transition.guard is None else constant_fold(transition.guard),
                actions=[fold_statement(stmt) for stmt in transition.actions],
                call=transition.call,
            )
            for transition in state.transitions
        ]
        states.append(
            State(state.name, actions=[fold_statement(s) for s in state.actions],
                  transitions=transitions)
        )
    return Fsm(
        fsm.name, states, fsm.initial,
        variables=list(fsm.variables.values()),
        ports=fsm.ports,
        done_states=[d for d in fsm.done_states],
        result_var=fsm.result_var,
    )


def reachable_states(fsm):
    """Return the set of state names reachable from the initial state."""
    seen = set()
    frontier = [fsm.initial]
    while frontier:
        name = frontier.pop()
        if name in seen or name not in fsm.states:
            continue
        seen.add(name)
        for transition in fsm.states[name].transitions:
            frontier.append(transition.target)
    return seen


def remove_unreachable_states(fsm):
    """Return a new FSM containing only states reachable from the initial one."""
    keep = reachable_states(fsm)
    states = [state for state in fsm.iter_states() if state.name in keep]
    return Fsm(
        fsm.name, states, fsm.initial,
        variables=list(fsm.variables.values()),
        ports=fsm.ports,
        done_states=[d for d in fsm.done_states if d in keep],
        result_var=fsm.result_var,
    )


def check_fsm(fsm):
    """Structural checks; returns a list of problem descriptions (empty = OK)."""
    problems = []
    for state in fsm.iter_states():
        for transition in state.transitions:
            if transition.target not in fsm.states:
                problems.append(
                    f"state {state.name!r}: transition targets unknown state "
                    f"{transition.target!r}"
                )
    unreachable = set(fsm.states) - reachable_states(fsm)
    for name in sorted(unreachable):
        problems.append(f"state {name!r} is unreachable from {fsm.initial!r}")
    declared = set(fsm.variables)
    undeclared_reads = set(variables_read(fsm)) - declared
    for name in sorted(undeclared_reads):
        problems.append(f"variable {name!r} is read but never declared")
    undeclared_writes = set(variables_written(fsm)) - declared
    for name in sorted(undeclared_writes):
        problems.append(f"variable {name!r} is written but never declared")
    # A state with no outgoing transition that is not a done state is a trap.
    for state in fsm.iter_states():
        if not state.transitions and state.name not in fsm.done_states:
            problems.append(f"state {state.name!r} is a trap (no transitions, not done)")
    return problems
