"""Expression nodes of the behavioural IR.

Expressions are side-effect free.  Reading a port is an expression
(:class:`PortRef`), matching VHDL's signal reads and the generated C views'
``inport``/``cliGetPortValue`` calls.
"""

from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier

#: Binary operators understood by the interpreter, the emitters and the HLS
#: data-flow extraction.
BINARY_OPS = (
    "add", "sub", "mul", "div", "mod",
    "eq", "ne", "lt", "le", "gt", "ge",
    "and", "or", "xor",
    "min", "max",
)

UNARY_OPS = ("not", "neg", "abs")


class Expr:
    """Base class of all expression nodes."""

    def children(self):
        """Sub-expressions, used by visitors and transformations."""
        return ()

    # Convenience constructors so behavioural code reads naturally.
    def __add__(self, other):
        return BinOp("add", self, wrap(other))

    def __sub__(self, other):
        return BinOp("sub", self, wrap(other))

    def __mul__(self, other):
        return BinOp("mul", self, wrap(other))

    def eq(self, other):
        return BinOp("eq", self, wrap(other))

    def ne(self, other):
        return BinOp("ne", self, wrap(other))

    def lt(self, other):
        return BinOp("lt", self, wrap(other))

    def le(self, other):
        return BinOp("le", self, wrap(other))

    def gt(self, other):
        return BinOp("gt", self, wrap(other))

    def ge(self, other):
        return BinOp("ge", self, wrap(other))

    def and_(self, other):
        return BinOp("and", self, wrap(other))

    def or_(self, other):
        return BinOp("or", self, wrap(other))


class Const(Expr):
    """A literal constant (integer, bit, boolean or enum literal string)."""

    def __init__(self, value):
        if not isinstance(value, (int, bool, str)):
            raise ModelError(f"unsupported constant {value!r}")
        self.value = value

    def __repr__(self):
        return f"Const({self.value!r})"

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return hash(("Const", self.value))


class Var(Expr):
    """A reference to an FSM variable (or a service parameter)."""

    def __init__(self, name):
        self.name = check_identifier(name, "variable name")

    def __repr__(self):
        return f"Var({self.name})"

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return hash(("Var", self.name))


class PortRef(Expr):
    """A read of a named port.

    In the HW view this is a signal read; in the SW simulation view it
    becomes ``cliGetPortValue(map(NAME))``; in a SW synthesis view it becomes
    the platform primitive (e.g. ``inport(map(NAME))``).
    """

    def __init__(self, port_name):
        self.port_name = check_identifier(port_name, "port name")

    def __repr__(self):
        return f"PortRef({self.port_name})"

    def __eq__(self, other):
        return isinstance(other, PortRef) and self.port_name == other.port_name

    def __hash__(self):
        return hash(("PortRef", self.port_name))


class BinOp(Expr):
    """A binary operation over two sub-expressions."""

    def __init__(self, op, left, right):
        if op not in BINARY_OPS:
            raise ModelError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = wrap(left)
        self.right = wrap(right)

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return f"BinOp({self.op}, {self.left!r}, {self.right!r})"

    def __eq__(self, other):
        return (
            isinstance(other, BinOp)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("BinOp", self.op, self.left, self.right))


class UnOp(Expr):
    """A unary operation."""

    def __init__(self, op, operand):
        if op not in UNARY_OPS:
            raise ModelError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = wrap(operand)

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return f"UnOp({self.op}, {self.operand!r})"

    def __eq__(self, other):
        return isinstance(other, UnOp) and self.op == other.op and self.operand == other.operand

    def __hash__(self):
        return hash(("UnOp", self.op, self.operand))


def wrap(value):
    """Turn plain Python scalars into :class:`Const` nodes; pass Exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, bool, str)):
        return Const(value)
    raise ModelError(f"cannot use {value!r} as an IR expression")


# Short factory helpers used throughout the application models.

def const(value):
    """Create a :class:`Const`."""
    return Const(value)


def var(name):
    """Create a :class:`Var` reference."""
    return Var(name)


def port(name):
    """Create a :class:`PortRef` read."""
    return PortRef(name)
