"""Data types carried by IR variables, ports and signals.

The type system is the intersection of what the paper's C and VHDL views
need: single bits, booleans, bounded integers, bit vectors and enumerations
(used for the state variables of the generated FSMs).
"""

from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class DataType:
    """Base class of all IR data types."""

    #: default value used when a declaration omits an initialiser
    default = 0

    def check(self, value):
        """Validate *value* against the type; return the (possibly coerced) value."""
        raise NotImplementedError

    def c_name(self):
        """The C type used in generated software views."""
        raise NotImplementedError

    def vhdl_name(self):
        """The VHDL type used in generated hardware views."""
        raise NotImplementedError

    def bit_width(self):
        """Number of bits needed to store a value (used by the HLS estimator)."""
        raise NotImplementedError

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class BitType(DataType):
    """A single bit (``0`` or ``1``)."""

    def check(self, value):
        if value in (0, 1, False, True):
            return int(value)
        raise ModelError(f"bit value must be 0 or 1, got {value!r}")

    def c_name(self):
        return "int"

    def vhdl_name(self):
        return "std_logic"

    def bit_width(self):
        return 1

    def __repr__(self):
        return "BitType()"


class BoolType(DataType):
    """A boolean; rendered as ``int`` in C and ``boolean`` in VHDL."""

    def check(self, value):
        return bool(value)

    def c_name(self):
        return "int"

    def vhdl_name(self):
        return "boolean"

    def bit_width(self):
        return 1

    def __repr__(self):
        return "BoolType()"


class IntType(DataType):
    """A bounded integer.

    The default range matches a 16-bit two's-complement word, the natural
    width of the paper's ISA-bus data path.
    """

    def __init__(self, low=-32768, high=32767):
        if low > high:
            raise ModelError(f"empty integer range [{low}, {high}]")
        self.low = low
        self.high = high

    def check(self, value):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ModelError(f"integer value expected, got {value!r}")
        if not self.low <= value <= self.high:
            raise ModelError(
                f"value {value} outside range [{self.low}, {self.high}]"
            )
        return value

    def c_name(self):
        return "int" if self.low < 0 else "unsigned int"

    def vhdl_name(self):
        return f"integer range {self.low} to {self.high}"

    def bit_width(self):
        span = max(abs(self.low), abs(self.high) + 1)
        width = 1
        while (1 << width) < span:
            width += 1
        return width + (1 if self.low < 0 else 0)

    def __repr__(self):
        return f"IntType({self.low}, {self.high})"


class BitVectorType(DataType):
    """A fixed-width unsigned bit vector, stored as a Python int."""

    def __init__(self, width):
        if not isinstance(width, int) or width <= 0:
            raise ModelError(f"bit-vector width must be a positive int, got {width!r}")
        self.width = width

    def check(self, value):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ModelError(f"bit-vector value must be an int, got {value!r}")
        if not 0 <= value < (1 << self.width):
            raise ModelError(
                f"value {value} does not fit in {self.width} bits"
            )
        return value

    def c_name(self):
        return "unsigned int"

    def vhdl_name(self):
        return f"std_logic_vector({self.width - 1} downto 0)"

    def bit_width(self):
        return self.width

    def __repr__(self):
        return f"BitVectorType({self.width})"


class EnumType(DataType):
    """An enumeration; values are the literal strings themselves."""

    def __init__(self, name, literals):
        self.name = check_identifier(name, "enum type name")
        literals = tuple(literals)
        if not literals:
            raise ModelError(f"enum {name!r} needs at least one literal")
        seen = set()
        for literal in literals:
            check_identifier(literal, f"enum literal of {name!r}")
            if literal in seen:
                raise ModelError(f"duplicate literal {literal!r} in enum {name!r}")
            seen.add(literal)
        self.literals = literals

    @property
    def default(self):
        return self.literals[0]

    def check(self, value):
        if value not in self.literals:
            raise ModelError(
                f"{value!r} is not a literal of enum {self.name!r} {self.literals}"
            )
        return value

    def index_of(self, value):
        return self.literals.index(self.check(value))

    def c_name(self):
        return self.name.upper()

    def vhdl_name(self):
        return self.name.upper()

    def bit_width(self):
        width = 1
        while (1 << width) < len(self.literals):
            width += 1
        return width

    def __repr__(self):
        return f"EnumType({self.name!r}, {list(self.literals)!r})"


#: Shared singletons for the common scalar types.
BIT = BitType()
BOOL = BoolType()
INT = IntType()


def word_type(width=16):
    """An unsigned integer type matching a *width*-bit bus word."""
    return IntType(0, (1 << width) - 1)
