"""Software and hardware modules of the unified model."""

from repro.core.port import Port, check_unique_ports
from repro.ir.fsm import Fsm
from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class Module:
    """Common behaviour of software and hardware modules."""

    kind = "abstract"

    def __init__(self, name, ports=(), description=""):
        self.name = check_identifier(name, "module name")
        self.ports = check_unique_ports(ports, owner=f"module {name!r}")
        self.description = description

    def behaviours(self):
        """Return the FSMs describing this module's behaviour."""
        raise NotImplementedError

    def services_used(self):
        """Distinct service names called by any behaviour of the module."""
        names = []
        for fsm in self.behaviours():
            for service in fsm.service_calls():
                if service not in names:
                    names.append(service)
        return names

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


class SoftwareModule(Module):
    """A software module: one FSM, one transition per activation.

    The paper's Distribution subsystem is the canonical example: a C program
    organised as a finite state machine; "each time a software component is
    activated, all the code is executed [but] only one transition is
    executed", giving precise HW/SW synchronization.
    """

    kind = "software"

    def __init__(self, name, fsm, ports=(), description="", activation_period=None):
        super().__init__(name, ports=ports, description=description)
        if not isinstance(fsm, Fsm):
            raise ModelError(f"software module {name!r}: fsm must be an Fsm")
        self.fsm = fsm
        #: co-simulation activation period in ns (None = activate every cycle
        #: of the co-simulation backplane's software clock)
        self.activation_period = activation_period

    def behaviours(self):
        return [self.fsm]


class HardwareModule(Module):
    """A hardware module: parallel processes, one transition per clock cycle.

    The paper's Speed Control subsystem has three processes (Position, Core,
    Timer) communicating through VHDL signals; those internal signals are
    modelled here as module ports flagged internal.
    """

    kind = "hardware"

    def __init__(self, name, processes, ports=(), internal_signals=(), description="",
                 clock_period=100):
        super().__init__(name, ports=ports, description=description)
        self.processes = {}
        for fsm in processes:
            if not isinstance(fsm, Fsm):
                raise ModelError(f"hardware module {name!r}: {fsm!r} is not an Fsm")
            if fsm.name in self.processes:
                raise ModelError(
                    f"hardware module {name!r}: duplicate process {fsm.name!r}"
                )
            self.processes[fsm.name] = fsm
        self.internal_signals = check_unique_ports(
            internal_signals, owner=f"module {name!r} internal signals"
        )
        #: default clock period (ns) used by co-simulation before synthesis
        #: back-annotates a real achievable clock
        self.clock_period = clock_period

    def behaviours(self):
        return list(self.processes.values())

    def process(self, name):
        try:
            return self.processes[name]
        except KeyError:
            raise ModelError(
                f"hardware module {self.name!r} has no process {name!r}"
            ) from None

    def all_signal_names(self):
        """Port and internal-signal names of the module."""
        return list(self.ports) + list(self.internal_signals)
