"""Multi-view library (paper §3, Figure 3).

Every communication procedure exists in several *views*:

* ``ViewKind.HW`` — a VHDL procedure; used both for co-simulation of the
  hardware side and for hardware synthesis,
* ``ViewKind.SW_SIM`` — C code against the simulator's C-language interface
  (``cliGetPortValue`` / ``cliOutput``); used only during co-simulation,
* ``ViewKind.SW_SYNTH`` — C code against a concrete platform's primitives
  (``inport``/``outport`` on the PC-AT, UNIX IPC calls, a micro-code routine
  …); one view per target platform, used only during co-synthesis.

The :class:`MultiViewLibrary` stores views keyed by
``(service, kind, platform)`` and is queried by the co-simulation backplane
and the co-synthesis flow.  A missing view is exactly the situation the
paper describes for retargeting: "to map this application onto another
target architecture, we need to have the corresponding communication
primitives".
"""

import enum

from repro.utils.errors import ViewError
from repro.utils.ids import check_identifier


class ViewKind(enum.Enum):
    """The three view categories of Figure 3."""

    HW = "hw"
    SW_SIM = "sw_sim"
    SW_SYNTH = "sw_synth"


class View:
    """One concrete view of a service.

    Parameters
    ----------
    service:
        Name of the service the view implements.
    kind:
        :class:`ViewKind`.
    language:
        ``"c"`` or ``"vhdl"``.
    text:
        The generated (or hand-written) source text of the view.
    platform:
        Target platform name; required for ``SW_SYNTH`` views, forbidden for
        the platform-independent ``HW`` and ``SW_SIM`` views.
    metadata:
        Free-form dictionary (address maps, estimated cycle counts, ...).
    """

    def __init__(self, service, kind, language, text, platform=None, metadata=None):
        self.service = check_identifier(service, "service name")
        if not isinstance(kind, ViewKind):
            raise ViewError(f"view of {service!r}: kind must be a ViewKind")
        self.kind = kind
        if language not in ("c", "vhdl"):
            raise ViewError(f"view of {service!r}: language must be 'c' or 'vhdl'")
        self.language = language
        self.text = text
        if kind is ViewKind.SW_SYNTH and not platform:
            raise ViewError(
                f"view of {service!r}: SW synthesis views must name their platform"
            )
        if kind is not ViewKind.SW_SYNTH and platform:
            raise ViewError(
                f"view of {service!r}: only SW synthesis views are platform specific"
            )
        self.platform = platform
        self.metadata = dict(metadata or {})

    @property
    def key(self):
        return (self.service, self.kind, self.platform)

    def __repr__(self):
        platform = f", platform={self.platform}" if self.platform else ""
        return f"View({self.service}, {self.kind.value}, {self.language}{platform})"


class MultiViewLibrary:
    """Container of views, indexed by ``(service, kind, platform)``."""

    def __init__(self, views=()):
        self._views = {}
        for view in views:
            self.add(view)

    def add(self, view, replace=False):
        """Register a view; refuses duplicates unless *replace* is true."""
        if not isinstance(view, View):
            raise ViewError(f"{view!r} is not a View")
        if view.key in self._views and not replace:
            raise ViewError(f"duplicate view {view.key}")
        self._views[view.key] = view
        return view

    def get(self, service, kind, platform=None):
        """Return the view for *(service, kind, platform)*; raise if missing."""
        key = (service, kind, platform if kind is ViewKind.SW_SYNTH else None)
        try:
            return self._views[key]
        except KeyError:
            where = f" for platform {platform!r}" if platform else ""
            raise ViewError(
                f"no {kind.value} view of service {service!r}{where}; "
                "add the corresponding communication primitive to the library"
            ) from None

    def has(self, service, kind, platform=None):
        key = (service, kind, platform if kind is ViewKind.SW_SYNTH else None)
        return key in self._views

    def views_of(self, service):
        """All registered views of one service."""
        return [view for view in self._views.values() if view.service == service]

    def services(self):
        """Names of all services having at least one view."""
        return sorted({view.service for view in self._views.values()})

    def platforms(self):
        """Names of all platforms having at least one SW synthesis view."""
        return sorted(
            {view.platform for view in self._views.values() if view.platform}
        )

    def missing_views(self, services, platforms=()):
        """Report which views are absent for the given services.

        For each service the HW and SW simulation views are always required;
        one SW synthesis view is required per platform in *platforms*.
        Returns a list of human-readable gap descriptions.
        """
        missing = []
        for service in services:
            if not self.has(service, ViewKind.HW):
                missing.append(f"{service}: missing HW view")
            if not self.has(service, ViewKind.SW_SIM):
                missing.append(f"{service}: missing SW simulation view")
            for platform in platforms:
                if not self.has(service, ViewKind.SW_SYNTH, platform):
                    missing.append(
                        f"{service}: missing SW synthesis view for platform {platform}"
                    )
        return missing

    def merge(self, other):
        """Add every view of *other* into this library (duplicates rejected)."""
        for view in other._views.values():
            self.add(view)
        return self

    def __len__(self):
        return len(self._views)

    def __iter__(self):
        return iter(self._views.values())

    def __repr__(self):
        return f"MultiViewLibrary({len(self._views)} views, services={self.services()})"
