"""Services (access procedures) of communication units.

A service is the only way a module interacts with a communication unit: the
paper's ``put``/``get`` of Figure 2, or ``SetupControl`` / ``MotorPosition``
/ ``ReadMotorState`` of the motor controller.  Its behaviour is a single FSM
over the unit's ports; the different *views* (C for simulation, C for each
software target, VHDL for hardware) are generated from — or checked against —
this one description.
"""

from repro.ir.dtypes import DataType
from repro.ir.fsm import Fsm
from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class ServiceParam:
    """A formal parameter of a service (e.g. ``REQUEST`` of ``PUT``)."""

    def __init__(self, name, dtype, description=""):
        self.name = check_identifier(name, "service parameter")
        if not isinstance(dtype, DataType):
            raise ModelError(f"parameter {name!r}: dtype must be a DataType")
        self.dtype = dtype
        self.description = description

    def __repr__(self):
        return f"ServiceParam({self.name}, {self.dtype!r})"


class Service:
    """An access procedure offered by a communication unit.

    Parameters
    ----------
    name:
        Procedure name, shared by all its views.
    fsm:
        Behavioural FSM over the unit's ports.  Service parameters must be
        declared as FSM variables (they are assigned from the caller's
        arguments at each step); the FSM's ``result_var`` — if any — is the
        value handed back to the caller on completion.
    params:
        Ordered formal parameters.
    returns:
        Data type of the returned value, or ``None`` for a procedure that
        only reports completion.
    interface:
        Name of the interface group this service belongs to (the paper groups
        services into ``Distribution_Interface``, ``Control_Interface``,
        ``Motor_Interface``).
    """

    def __init__(self, name, fsm, params=(), returns=None, interface=None,
                 description=""):
        self.name = check_identifier(name, "service name")
        if not isinstance(fsm, Fsm):
            raise ModelError(f"service {name!r}: fsm must be an Fsm")
        self.fsm = fsm
        self.params = tuple(params)
        for param in self.params:
            if not isinstance(param, ServiceParam):
                raise ModelError(f"service {name!r}: {param!r} is not a ServiceParam")
            if param.name not in fsm.variables:
                raise ModelError(
                    f"service {name!r}: parameter {param.name!r} must be declared "
                    "as an FSM variable"
                )
        if returns is not None and not isinstance(returns, DataType):
            raise ModelError(f"service {name!r}: returns must be a DataType or None")
        self.returns = returns
        if returns is not None and fsm.result_var is None:
            raise ModelError(
                f"service {name!r}: declares a return type but the FSM has no result_var"
            )
        self.interface = interface
        self.description = description
        if not fsm.done_states:
            raise ModelError(
                f"service {name!r}: the FSM needs at least one done state so callers "
                "can detect completion"
            )

    @property
    def param_names(self):
        return [param.name for param in self.params]

    def ports_used(self):
        """Names of the communication-unit ports the service touches."""
        used = []
        for name in self.fsm.read_ports() + self.fsm.written_ports():
            if name not in used:
                used.append(name)
        return used

    def __repr__(self):
        return f"Service({self.name}, params={self.param_names}, interface={self.interface})"
