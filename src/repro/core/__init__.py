"""The unified system model — the paper's primary contribution.

A system is a set of communicating modules of three kinds (paper §1):

1. :class:`SoftwareModule` — behaviour given as an FSM executed one
   transition per activation (the C program of the paper),
2. :class:`HardwareModule` — one or more parallel processes, each an FSM
   executed once per clock cycle (the VHDL architecture of the paper),
3. :class:`CommunicationUnit` — a library component offering *services*
   (access procedures such as ``put``/``get``) implemented over hardware
   ports and guarded by a *communication controller*.

Modules never touch each other's ports: all interaction goes through service
calls.  Each service exists in several :class:`View`\\ s (HW view, SW
simulation view, SW synthesis views per platform) collected in a
:class:`MultiViewLibrary`; selecting views is what retargets the same system
description to co-simulation or to any supported platform.
"""

from repro.core.port import Port, PortDirection
from repro.core.service import Service, ServiceParam
from repro.core.comm_unit import CommunicationController, CommunicationUnit
from repro.core.views import View, ViewKind, MultiViewLibrary
from repro.core.module import Module, SoftwareModule, HardwareModule
from repro.core.model import SystemModel, Binding
from repro.core.validation import validate_model

__all__ = [
    "Port",
    "PortDirection",
    "Service",
    "ServiceParam",
    "CommunicationController",
    "CommunicationUnit",
    "View",
    "ViewKind",
    "MultiViewLibrary",
    "Module",
    "SoftwareModule",
    "HardwareModule",
    "SystemModel",
    "Binding",
    "validate_model",
]
