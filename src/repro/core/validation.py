"""Whole-model validation.

Validation is run before either flow starts; it catches exactly the mistakes
the paper's methodology is meant to prevent from going unnoticed:

* a module calling a service that no communication unit provides,
* a communication unit whose services touch undeclared ports,
* behavioural FSMs with unreachable/trap states or undeclared variables,
* missing views for the flow about to run (HW + SW simulation views for
  co-simulation, SW synthesis views for every targeted platform).

Since the :mod:`repro.lint` analyzer landed, this module is a thin
compatibility shim: the checks run on the diagnostics engine
(``lint_model(..., legacy_only=True)``) and the historical problem strings
are reproduced byte-for-byte from each diagnostic's ``legacy`` text.  New
code should call ``lint_model`` directly — it also runs the dataflow, race
and protocol passes this API never had.
"""

from repro.utils.errors import ValidationError


def validate_model(model, library=None, platforms=(), raise_on_error=True):
    """Validate *model* and optionally its view *library*.

    Returns the list of problems found; raises :class:`ValidationError` when
    *raise_on_error* is true and at least one problem exists.  The raised
    error additionally carries the structured diagnostics as
    ``exc.diagnostics``.
    """
    from repro.lint import lint_model

    report = lint_model(model, library=library, platforms=platforms,
                        legacy_only=True)
    problems = [diagnostic.legacy_text for diagnostic in report.diagnostics]
    if problems and raise_on_error:
        raise ValidationError(problems, diagnostics=report.diagnostics)
    return problems
