"""Whole-model validation.

Validation is run before either flow starts; it catches exactly the mistakes
the paper's methodology is meant to prevent from going unnoticed:

* a module calling a service that no communication unit provides,
* a communication unit whose services touch undeclared ports,
* behavioural FSMs with unreachable/trap states or undeclared variables,
* missing views for the flow about to run (HW + SW simulation views for
  co-simulation, SW synthesis views for every targeted platform).
"""

from repro.core.module import SoftwareModule
from repro.core.views import MultiViewLibrary
from repro.ir.transform import check_fsm
from repro.utils.errors import ValidationError


def validate_model(model, library=None, platforms=(), raise_on_error=True):
    """Validate *model* and optionally its view *library*.

    Returns the list of problems found; raises :class:`ValidationError` when
    *raise_on_error* is true and at least one problem exists.
    """
    problems = []
    problems.extend(_check_behaviours(model))
    problems.extend(_check_comm_units(model))
    problems.extend(_check_bindings(model))
    if library is not None:
        problems.extend(_check_views(model, library, platforms))
    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems


def _check_behaviours(model):
    problems = []
    for module in model.modules.values():
        for fsm in module.behaviours():
            for issue in check_fsm(fsm):
                problems.append(f"module {module.name}/{fsm.name}: {issue}")
        if isinstance(module, SoftwareModule) and len(module.behaviours()) != 1:
            problems.append(
                f"module {module.name}: software modules have exactly one FSM"
            )
    return problems


def _check_comm_units(model):
    problems = []
    for unit in model.comm_units.values():
        for issue in unit.check_ports():
            problems.append(f"communication unit {unit.name}: {issue}")
        for service in unit.services.values():
            for issue in check_fsm(service.fsm):
                problems.append(
                    f"communication unit {unit.name}, service {service.name}: {issue}"
                )
        for controller in unit.controllers:
            for issue in check_fsm(controller.fsm):
                problems.append(
                    f"communication unit {unit.name}, controller {controller.name}: {issue}"
                )
    return problems


def _check_bindings(model):
    problems = []
    for module in model.modules.values():
        for service_name in module.services_used():
            binding = model.binding_for(module.name, service_name)
            if binding is None:
                problems.append(
                    f"module {module.name}: service {service_name!r} is called but "
                    "not bound to any communication unit"
                )
    for binding in model.bindings:
        module = model.modules[binding.module]
        if binding.service not in module.services_used():
            problems.append(
                f"binding {binding!r}: module {binding.module} never calls "
                f"{binding.service!r}"
            )
    return problems


def _check_views(model, library, platforms):
    if not isinstance(library, MultiViewLibrary):
        return [f"view library must be a MultiViewLibrary, got {type(library).__name__}"]
    problems = []
    # HW views are needed for services used by hardware modules; SW views for
    # services used by software modules.
    from repro.core.views import ViewKind

    for module in model.modules.values():
        for service_name in module.services_used():
            binding = model.binding_for(module.name, service_name)
            if binding is None:
                continue  # already reported by _check_bindings
            if module.kind == "software":
                if not library.has(service_name, ViewKind.SW_SIM):
                    problems.append(
                        f"service {service_name!r}: missing SW simulation view "
                        f"(needed by software module {module.name})"
                    )
                for platform in platforms:
                    if not library.has(service_name, ViewKind.SW_SYNTH, platform):
                        problems.append(
                            f"service {service_name!r}: missing SW synthesis view for "
                            f"platform {platform!r} (needed by software module {module.name})"
                        )
            else:
                if not library.has(service_name, ViewKind.HW):
                    problems.append(
                        f"service {service_name!r}: missing HW view "
                        f"(needed by hardware module {module.name})"
                    )
    return problems
