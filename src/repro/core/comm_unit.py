"""Communication units and their controllers (paper §3, Figure 2).

A communication unit is "an entity able to execute a communication scheme
invoked through a procedure call mechanism".  It owns

* a set of hardware **ports** (the registers and flags its protocol uses),
* a set of **services** (access procedures) grouped into named interfaces,
* optionally a **controller** — an FSM clocked like a hardware process that
  guards the unit's state and resolves conflicts (a handshake, a FIFO
  manager, up to a layered protocol).

The unit itself is a library component: co-synthesis never synthesizes it,
it swaps in the platform's real communication resources instead.
"""

from repro.core.port import Port, check_unique_ports
from repro.core.service import Service
from repro.ir.fsm import Fsm
from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class CommunicationController:
    """The conflict-resolution / state-guarding FSM of a communication unit."""

    def __init__(self, name, fsm, description="", protocol=""):
        self.name = check_identifier(name, "controller name")
        if not isinstance(fsm, Fsm):
            raise ModelError(f"controller {name!r}: fsm must be an Fsm")
        self.fsm = fsm
        self.description = description
        #: Protocol template this controller was stamped from (e.g.
        #: ``"handshake"``, ``"fifo(depth=4)"``); empty for hand-built
        #: controllers.  Part of the whole-system codegen spec, so two
        #: structurally equal FSMs from different templates cache apart.
        self.protocol = protocol

    def __repr__(self):
        return f"CommunicationController({self.name})"


class CommunicationUnit:
    """A communication unit: ports + services + optional controller."""

    def __init__(self, name, ports=(), services=(), controller=None, controllers=(),
                 description=""):
        self.name = check_identifier(name, "communication unit name")
        self.ports = check_unique_ports(ports, owner=f"communication unit {name!r}")
        self.services = {}
        self.interfaces = {}
        for service in services:
            self.add_service(service)
        all_controllers = list(controllers)
        if controller is not None:
            all_controllers.insert(0, controller)
        self.controllers = []
        for item in all_controllers:
            if not isinstance(item, CommunicationController):
                raise ModelError(
                    f"communication unit {name!r}: {item!r} is not a "
                    "CommunicationController"
                )
            self.controllers.append(item)
        self.description = description

    @property
    def controller(self):
        """The first controller (None when the unit is purely passive)."""
        return self.controllers[0] if self.controllers else None

    # ----------------------------------------------------------------- build

    def add_port(self, port):
        if not isinstance(port, Port):
            raise ModelError(f"{port!r} is not a Port")
        if port.name in self.ports:
            raise ModelError(f"communication unit {self.name!r}: duplicate port {port.name!r}")
        self.ports[port.name] = port
        return port

    def add_service(self, service):
        if not isinstance(service, Service):
            raise ModelError(f"{service!r} is not a Service")
        if service.name in self.services:
            raise ModelError(
                f"communication unit {self.name!r}: duplicate service {service.name!r}"
            )
        self.services[service.name] = service
        interface = service.interface or "default"
        self.interfaces.setdefault(interface, []).append(service.name)
        return service

    # ----------------------------------------------------------------- query

    def service(self, name):
        try:
            return self.services[name]
        except KeyError:
            raise ModelError(
                f"communication unit {self.name!r} has no service {name!r}"
            ) from None

    def interface_services(self, interface):
        """Return the Service objects of one interface group."""
        if interface not in self.interfaces:
            raise ModelError(
                f"communication unit {self.name!r} has no interface {interface!r}"
            )
        return [self.services[name] for name in self.interfaces[interface]]

    def port(self, name):
        try:
            return self.ports[name]
        except KeyError:
            raise ModelError(
                f"communication unit {self.name!r} has no port {name!r}"
            ) from None

    def check_ports(self):
        """Check that every port referenced by services/controller exists.

        Returns a list of problems (empty when consistent).
        """
        problems = []
        known = set(self.ports)
        for service in self.services.values():
            for port_name in service.ports_used():
                if port_name not in known:
                    problems.append(
                        f"service {service.name!r} uses undeclared port {port_name!r}"
                    )
        for controller in self.controllers:
            controller_ports = set(controller.fsm.read_ports()) | set(
                controller.fsm.written_ports()
            )
            for port_name in sorted(controller_ports - known):
                problems.append(
                    f"controller {controller.name!r} uses undeclared port {port_name!r}"
                )
        return problems

    def __repr__(self):
        return (
            f"CommunicationUnit({self.name}, ports={len(self.ports)}, "
            f"services={sorted(self.services)})"
        )
