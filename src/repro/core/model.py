"""The system model: modules + communication units + bindings."""

from repro.core.comm_unit import CommunicationUnit
from repro.core.module import HardwareModule, Module, SoftwareModule
from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class Binding:
    """States that *module* obtains *service* from communication unit *unit*."""

    def __init__(self, module, service, unit):
        self.module = module
        self.service = service
        self.unit = unit

    def __repr__(self):
        return f"Binding({self.module}.{self.service} -> {self.unit})"


class SystemModel:
    """A complete system description, input of both co-simulation and co-synthesis.

    The model deliberately contains **no** information about the execution
    platform: software behaviour, hardware behaviour and abstract
    communication only.  Platform specifics enter later, through the views
    selected by each flow.
    """

    def __init__(self, name, description=""):
        self.name = check_identifier(name, "system name")
        self.description = description
        self.modules = {}
        self.comm_units = {}
        self.bindings = []

    # ----------------------------------------------------------------- build

    def add_module(self, module):
        if not isinstance(module, Module):
            raise ModelError(f"{module!r} is not a Module")
        if module.name in self.modules:
            raise ModelError(f"duplicate module {module.name!r}")
        if module.name in self.comm_units:
            raise ModelError(f"name {module.name!r} already used by a communication unit")
        self.modules[module.name] = module
        return module

    def add_software_module(self, module):
        if not isinstance(module, SoftwareModule):
            raise ModelError(f"{module!r} is not a SoftwareModule")
        return self.add_module(module)

    def add_hardware_module(self, module):
        if not isinstance(module, HardwareModule):
            raise ModelError(f"{module!r} is not a HardwareModule")
        return self.add_module(module)

    def add_comm_unit(self, unit):
        if not isinstance(unit, CommunicationUnit):
            raise ModelError(f"{unit!r} is not a CommunicationUnit")
        if unit.name in self.comm_units:
            raise ModelError(f"duplicate communication unit {unit.name!r}")
        if unit.name in self.modules:
            raise ModelError(f"name {unit.name!r} already used by a module")
        self.comm_units[unit.name] = unit
        return unit

    def bind(self, module_name, service_name, unit_name):
        """Record that *module_name* reaches *service_name* through *unit_name*."""
        if module_name not in self.modules:
            raise ModelError(f"unknown module {module_name!r}")
        if unit_name not in self.comm_units:
            raise ModelError(f"unknown communication unit {unit_name!r}")
        unit = self.comm_units[unit_name]
        if service_name not in unit.services:
            raise ModelError(
                f"communication unit {unit_name!r} offers no service {service_name!r}"
            )
        for binding in self.bindings:
            if binding.module == module_name and binding.service == service_name:
                raise ModelError(
                    f"service {service_name!r} of module {module_name!r} is already bound"
                )
        binding = Binding(module_name, service_name, unit_name)
        self.bindings.append(binding)
        return binding

    def bind_interface(self, module_name, unit_name, interface):
        """Bind every service of one interface group in a single call."""
        unit = self.comm_unit(unit_name)
        bindings = []
        for service in unit.interface_services(interface):
            bindings.append(self.bind(module_name, service.name, unit_name))
        return bindings

    # ----------------------------------------------------------------- query

    def module(self, name):
        try:
            return self.modules[name]
        except KeyError:
            raise ModelError(f"unknown module {name!r}") from None

    def comm_unit(self, name):
        try:
            return self.comm_units[name]
        except KeyError:
            raise ModelError(f"unknown communication unit {name!r}") from None

    def software_modules(self):
        return [m for m in self.modules.values() if isinstance(m, SoftwareModule)]

    def hardware_modules(self):
        return [m for m in self.modules.values() if isinstance(m, HardwareModule)]

    def binding_for(self, module_name, service_name):
        """Return the Binding of (*module*, *service*), or ``None``."""
        for binding in self.bindings:
            if binding.module == module_name and binding.service == service_name:
                return binding
        return None

    def unit_for(self, module_name, service_name):
        """Return the CommunicationUnit serving (*module*, *service*)."""
        binding = self.binding_for(module_name, service_name)
        if binding is None:
            raise ModelError(
                f"service {service_name!r} of module {module_name!r} is not bound "
                "to any communication unit"
            )
        return self.comm_units[binding.unit]

    def services_required(self):
        """Distinct service names called anywhere in the system."""
        names = []
        for module in self.modules.values():
            for service in module.services_used():
                if service not in names:
                    names.append(service)
        return names

    def topology(self):
        """Structural summary used by the Figure 4/5 regeneration benches."""
        edges = []
        for binding in self.bindings:
            module = self.modules[binding.module]
            edges.append(
                {
                    "module": binding.module,
                    "module_kind": module.kind,
                    "service": binding.service,
                    "unit": binding.unit,
                    "interface": self.comm_units[binding.unit]
                    .services[binding.service]
                    .interface,
                }
            )
        return {
            "system": self.name,
            "software_modules": sorted(m.name for m in self.software_modules()),
            "hardware_modules": sorted(m.name for m in self.hardware_modules()),
            "comm_units": sorted(self.comm_units),
            "bindings": edges,
        }

    def __repr__(self):
        return (
            f"SystemModel({self.name}, modules={sorted(self.modules)}, "
            f"units={sorted(self.comm_units)})"
        )
