"""Hardware ports of communication units and hardware modules."""

import enum

from repro.ir.dtypes import DataType, BIT
from repro.utils.errors import ModelError
from repro.utils.ids import check_identifier


class PortDirection(enum.Enum):
    """Direction of a port as seen from its owning component."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class Port:
    """A named, typed, directed connection point.

    Ports belong to communication units (the register/handshake wires the
    access procedures manipulate) and to hardware modules (e.g. the motor's
    pulse and direction inputs).
    """

    def __init__(self, name, direction=PortDirection.INOUT, dtype=None, description=""):
        self.name = check_identifier(name, "port name")
        if not isinstance(direction, PortDirection):
            raise ModelError(f"port {name!r}: direction must be a PortDirection")
        self.direction = direction
        dtype = dtype if dtype is not None else BIT
        if not isinstance(dtype, DataType):
            raise ModelError(f"port {name!r}: dtype must be a DataType")
        self.dtype = dtype
        self.description = description

    @property
    def initial(self):
        """Initial value the corresponding simulation signal takes."""
        return self.dtype.default

    def __repr__(self):
        return f"Port({self.name}, {self.direction.value}, {self.dtype!r})"


def input_port(name, dtype=None, description=""):
    """Shorthand for an input port."""
    return Port(name, PortDirection.IN, dtype, description)


def output_port(name, dtype=None, description=""):
    """Shorthand for an output port."""
    return Port(name, PortDirection.OUT, dtype, description)


def check_unique_ports(ports, owner="component"):
    """Ensure port names are unique; returns them as an ordered dict."""
    result = {}
    for port in ports:
        if not isinstance(port, Port):
            raise ModelError(f"{owner}: {port!r} is not a Port")
        if port.name in result:
            raise ModelError(f"{owner}: duplicate port {port.name!r}")
        result[port.name] = port
    return result
