"""The Distribution subsystem (software) — paper Figure 6.

The module is a C program organised as a finite state machine; one transition
executes per activation.  Its job:

1. load the motor constraints and transmit them (``SetupControl``),
2. split the total travel into segments and, for each segment, transmit the
   next position (``MotorPosition``),
3. wait for the hardware's state report (``ReadMotorState``) before issuing
   the next segment,
4. finish once the final position has been commanded and confirmed.
"""

from repro.core.module import SoftwareModule
from repro.ir.builder import FsmBuilder
from repro.ir.dtypes import word_type
from repro.ir.expr import BinOp, var
from repro.ir.stmt import Assign


def build_distribution(config, name="DistributionMod", service_suffix=""):
    """Build the Distribution software module for the given scenario *config*.

    *service_suffix* renames the access procedures (e.g. ``"X"`` gives
    ``SetupControlX``), which lets several axes coexist in one system model
    and one view library (the paper's 2-D table needs one controller per
    axis).
    """
    word = word_type(16)
    build = FsmBuilder("DISTRIBUTION")
    build.variable("MAXSPEED", word, 0)
    build.variable("POSITION", word, config.start_position)
    build.variable("TARGET", word, config.start_position)
    build.variable("MSTATE", word, 0)
    build.variable("SEGMENTS", word, 0)

    with build.state("Start") as state:
        # LoadMotorConstraints
        state.go("SetupControlCall",
                 actions=[Assign("MAXSPEED", config.speed_limit),
                          Assign("POSITION", config.start_position)])

    with build.state("SetupControlCall") as state:
        state.call(f"SetupControl{service_suffix}", args=[var("MAXSPEED")], then="Step")

    with build.state("Step") as state:
        # PositionDefinition: next segment target, clipped to the final position.
        state.go("MotorPositionCall",
                 actions=[Assign("TARGET",
                                 BinOp("min", var("POSITION") + config.segment,
                                       config.final_position))])

    with build.state("MotorPositionCall") as state:
        state.call(f"MotorPosition{service_suffix}", args=[var("TARGET")], then="Next")

    with build.state("Next") as state:
        # UpdatePosition
        state.go("ReadStateCall",
                 actions=[Assign("POSITION", var("TARGET")),
                          Assign("SEGMENTS", var("SEGMENTS") + 1)])

    with build.state("ReadStateCall") as state:
        state.call(f"ReadMotorState{service_suffix}", store="MSTATE", then="NextStep")

    with build.state("NextStep") as state:
        state.go("Finish", when=var("POSITION").ge(config.final_position))
        state.go("Step")

    with build.state("Finish", done=True) as state:
        state.stay()

    fsm = build.build(initial="Start")
    # MSTATE deliberately discards the ReadMotorState result: the call is a
    # pure synchronization point (the paper's Distribution FSM waits for the
    # report before issuing the next segment).  Silence the dead-store rule.
    fsm.lint_suppress = ("DF002:'MSTATE'",)
    return SoftwareModule(
        name, fsm,
        description="Distribution subsystem: splits the travel into segments and "
                    "drives the Speed Control hardware through the "
                    "Distribution_Interface access procedures",
    )
