"""Physical model of the motor (the environment of the system).

The motor is a stepper-like axis: every rising edge of the pulse input moves
the position by one step in the commanded direction, and the sampled
coordinate is published back with a small conversion delay.  A minimum pulse
period models the mechanical limit: pulses arriving faster than the motor
can step are lost, which is exactly the discontinuous behaviour the
Adaptive Motor Controller exists to avoid.
"""

from repro.utils.errors import SimulationError


class MotorModel:
    """Stepper-style motor attached to the co-simulation as an environment."""

    def __init__(self, start_position=0, min_pulse_period_ns=None, sample_delay_ns=20,
                 name="motor"):
        self.name = name
        self.position = start_position
        self.start_position = start_position
        self.min_pulse_period_ns = min_pulse_period_ns
        self.sample_delay_ns = sample_delay_ns
        self.pulse_times = []
        self.missed_pulses = 0
        self.steps_forward = 0
        self.steps_backward = 0
        self._last_step_time = None
        self._attached = False

    # ----------------------------------------------------------------- wiring

    def attach(self, simulator, pulse_signal, direction_signal, sample_signal):
        """Register the motor's behaviour on the given simulator signals."""
        if self._attached:
            raise SimulationError("motor model is already attached")
        self._attached = True
        simulator.schedule(sample_signal, self.position, 0)

        def on_pulse():
            if not (pulse_signal.event and pulse_signal.value == 1):
                return
            now = simulator.now
            self.pulse_times.append(now)
            if (
                self.min_pulse_period_ns is not None
                and self._last_step_time is not None
                and now - self._last_step_time < self.min_pulse_period_ns
            ):
                self.missed_pulses += 1
                return
            self._last_step_time = now
            if direction_signal.value == 1:
                self.position += 1
                self.steps_forward += 1
            else:
                self.position -= 1
                self.steps_backward += 1
            simulator.schedule(sample_signal, self.position, self.sample_delay_ns)

        simulator.add_process(f"{self.name}_model", on_pulse,
                              sensitivity=[pulse_signal], initial_run=False)
        return self

    # ------------------------------------------------------------------ query

    @property
    def pulse_count(self):
        return len(self.pulse_times)

    @property
    def effective_steps(self):
        return self.steps_forward - self.steps_backward

    def pulse_periods(self):
        return [
            later - earlier
            for earlier, later in zip(self.pulse_times, self.pulse_times[1:])
        ]

    def summary(self):
        return {
            "position": self.position,
            "pulses": self.pulse_count,
            "missed_pulses": self.missed_pulses,
            "steps_forward": self.steps_forward,
            "steps_backward": self.steps_backward,
        }

    def __repr__(self):
        return (
            f"MotorModel(position={self.position}, pulses={self.pulse_count}, "
            f"missed={self.missed_pulses})"
        )
