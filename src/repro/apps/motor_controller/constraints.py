"""Real-time constraints of the Adaptive Motor Controller prototype.

The paper reports that "an analysis of the prototype system indicates that
this solution correctly implements the system functionality while meeting
the real-time constraints"; this module makes those constraints explicit and
checkable:

* **pulse-period constraint** — the motor cannot step faster than its
  mechanical limit (minimum period between pulses),
* **response-latency constraint** — the first pulse must follow the software
  position command within a bound,
* **functional constraint** — the motor must end exactly at the commanded
  final position with no missed pulses.
"""

from repro.analysis.timing import check_response_latency
from repro.utils.text import format_table


class RealTimeConstraints:
    """Checks a finished co-simulation run against the scenario constraints."""

    def __init__(self, config):
        self.config = config

    def check(self, session, result):
        """Return a report dictionary; ``report['ok']`` is the overall verdict."""
        motor = session.motor
        periods = motor.pulse_periods()
        min_period = min(periods) if periods else None
        pulse_ok = (
            min_period is None or min_period >= self.config.min_pulse_period_ns
        ) and motor.missed_pulses == 0

        command_times = [
            record.end_time for record in result.trace.completed(service="MotorPosition")
        ]
        latency_report = check_response_latency(
            command_times, motor.pulse_times, self.config.max_response_ns
        )

        functional_ok = motor.position == self.config.final_position
        report = {
            "final_position": motor.position,
            "expected_position": self.config.final_position,
            "functional_ok": functional_ok,
            "pulse_count": motor.pulse_count,
            "missed_pulses": motor.missed_pulses,
            "observed_min_pulse_period_ns": min_period,
            "required_min_pulse_period_ns": self.config.min_pulse_period_ns,
            "pulse_ok": pulse_ok,
            "response_latency_ns": latency_report.latency,
            "max_response_ns": self.config.max_response_ns,
            "response_ok": latency_report.ok,
            "ok": functional_ok and pulse_ok and latency_report.ok,
        }
        return report

    @staticmethod
    def as_table(report):
        rows = [(key, value) for key, value in report.items() if key != "ok"]
        rows.append(("overall", "MET" if report["ok"] else "VIOLATED"))
        return format_table(["constraint / observation", "value"], rows)
