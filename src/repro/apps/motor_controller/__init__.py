"""The Adaptive Motor Controller (paper §4, Figures 4-8).

The system adjusts the position and speed of a motor:

* the **Distribution** subsystem (software) splits the travel distance into
  segments and sends them, together with the motor constraints, to the
  hardware;
* the **Speed Control** subsystem (hardware — Position, Core and Timer
  units) turns each commanded position into a train of motor pulses while
  respecting the speed limit, and reports the reached position back;
* a **SW/HW communication unit** carries commands (``Distribution_Interface``)
  and status (``SpeedControl_Interface``); a **HW/HW communication unit**
  (``Motor_Interface``) carries pulses and sampled coordinates between the
  Speed Control hardware and the motor;
* the **motor** itself is part of the environment: a physical model attached
  to the co-simulation.
"""

from repro.apps.motor_controller.config import MotorControllerConfig
from repro.apps.motor_controller.motor import MotorModel
from repro.apps.motor_controller.comm_units import (
    build_sw_hw_unit,
    build_motor_unit,
    CMD_PREFIX,
    STAT_PREFIX,
)
from repro.apps.motor_controller.distribution import build_distribution
from repro.apps.motor_controller.speed_control import build_speed_control
from repro.apps.motor_controller.system import (
    build_system,
    build_session,
    build_view_library_for,
    make_motor_environment,
    observables,
)
from repro.apps.motor_controller.constraints import RealTimeConstraints
from repro.apps.motor_controller.two_axis import (
    build_two_axis_system,
    build_two_axis_session,
    two_axis_observables,
)

__all__ = [
    "MotorControllerConfig",
    "MotorModel",
    "build_sw_hw_unit",
    "build_motor_unit",
    "CMD_PREFIX",
    "STAT_PREFIX",
    "build_distribution",
    "build_speed_control",
    "build_system",
    "build_session",
    "build_view_library_for",
    "make_motor_environment",
    "observables",
    "RealTimeConstraints",
    "build_two_axis_system",
    "build_two_axis_session",
    "two_axis_observables",
]
