"""Assembly of the complete Adaptive Motor Controller system (Figure 4/5).

``build_system`` produces the platform-independent
:class:`~repro.core.model.SystemModel`; ``build_session`` wraps it in a
co-simulation session with the motor's physical model attached;
``observables`` extracts the platform-independent outcome used by the
coherence check; ``build_view_library_for`` generates the multi-view library
for any set of target platforms.
"""

from repro.apps.motor_controller.comm_units import (
    DISTRIBUTION_INTERFACE,
    SPEED_CONTROL_INTERFACE,
    MOTOR_INTERFACE,
    build_motor_unit,
    build_sw_hw_unit,
)
from repro.apps.motor_controller.config import MotorControllerConfig
from repro.apps.motor_controller.distribution import build_distribution
from repro.apps.motor_controller.motor import MotorModel
from repro.apps.motor_controller.speed_control import build_speed_control
from repro.comm.generator import build_view_library
from repro.core.model import SystemModel
from repro.cosim.session import CosimSession


def build_system(config=None):
    """Build the Adaptive Motor Controller system model.

    Returns ``(model, config)`` so callers that passed no configuration still
    know the scenario parameters in use.
    """
    config = config or MotorControllerConfig()
    model = SystemModel(
        "AdaptiveMotorController",
        description="Adaptive Motor Controller: SW Distribution subsystem and HW "
                    "Speed Control subsystem communicating through a SW/HW "
                    "communication unit; HW/HW unit towards the motor",
    )
    sw_hw_unit = model.add_comm_unit(build_sw_hw_unit())
    motor_unit = model.add_comm_unit(build_motor_unit())
    distribution = model.add_software_module(build_distribution(config))
    speed_control = model.add_hardware_module(build_speed_control(config))

    model.bind_interface(distribution.name, sw_hw_unit.name, DISTRIBUTION_INTERFACE)
    model.bind_interface(speed_control.name, sw_hw_unit.name, SPEED_CONTROL_INTERFACE)
    model.bind_interface(speed_control.name, motor_unit.name, MOTOR_INTERFACE)
    return model, config


def build_session(config=None, clock_period=100, sw_activation_period=None,
                  activation_policy=None, library=None, trace_signals=True):
    """Build a ready-to-run co-simulation session with the motor attached.

    The returned session carries the motor model as ``session.motor`` so
    tests and benchmarks can inspect the physical outcome directly.
    """
    model, config = build_system(config)
    session = CosimSession(
        model,
        library=library,
        clock_period=clock_period,
        sw_activation_period=sw_activation_period,
        activation_policy=activation_policy,
        trace_signals=trace_signals,
    )
    motor = MotorModel(
        start_position=config.start_position,
        min_pulse_period_ns=config.min_pulse_period_ns,
    )
    session.add_environment(make_motor_environment(config, motor=motor))
    session.motor = motor
    session.config = config
    return session


def make_motor_environment(config=None, motor=None):
    """Environment hook attaching the motor's physical model to a session.

    With no *motor* a fresh :class:`MotorModel` is created per session the
    hook is applied to — what re-usable consumers (``repro.dse``
    front validation) need, since the motor is stateful.
    """
    config = config or MotorControllerConfig()

    def attach_motor(active_session):
        plant = motor
        if plant is None:
            plant = MotorModel(
                start_position=config.start_position,
                min_pulse_period_ns=config.min_pulse_period_ns,
            )
        active_session.motor = plant
        plant.attach(
            active_session.simulator,
            active_session.unit_signal("MotorUnit", "MOT_PULSE"),
            active_session.unit_signal("MotorUnit", "MOT_DIR"),
            active_session.unit_signal("MotorUnit", "MOT_SAMPLE_REG"),
        )

    return attach_motor


def observables(session, result):
    """Platform-independent outcome of a run (used by the coherence check)."""
    motor = session.motor
    executor = session.software_executor("DistributionMod")
    variables = executor.variables()
    return {
        "motor_position": motor.position,
        "motor_pulses": motor.pulse_count,
        "missed_pulses": motor.missed_pulses,
        "segments_commanded": variables.get("SEGMENTS"),
        "final_sw_state": executor.current_state,
        "software_finished": executor.finished,
        "position_commands": result.trace.count(service="MotorPosition"),
        "state_reports": result.trace.count(service="ReturnMotorState"),
        "constraints_sent": result.trace.count(service="SetupControl"),
    }


def build_view_library_for(platforms=None, config=None):
    """Generate the multi-view library of the system's communication services.

    *platforms* maps platform names to Platform instances (or is None for the
    simulation-only views).  The SW synthesis views are generated with each
    platform's port-access syntax over the SW/HW unit's ports.
    """
    model, _ = build_system(config)
    sw_hw_unit = model.comm_unit("SwHwUnit")
    motor_unit = model.comm_unit("MotorUnit")
    syntaxes = {}
    for name, platform in (platforms or {}).items():
        syntaxes[name] = platform.port_syntax(list(sw_hw_unit.ports))
    # Only the SW/HW unit is reachable from software, so only its services
    # need per-platform SW synthesis views; the HW/HW Motor interface keeps
    # its HW and SW-simulation views.
    library = build_view_library([sw_hw_unit], platforms=syntaxes)
    return build_view_library([motor_unit], library=library)
