"""Two-axis (X/Y) motor control — the paper's 2-D table scenario.

The introduction of the paper's section 4 motivates the case study with a
two-dimensional positioning table: "the control in a 2-D space needs one
motor for each axis (X and Y) and an associated control system for a
continuous movement".  This module assembles exactly that: two complete
Distribution / Speed Control / communication-unit / motor chains in one
system model, each axis with its own access procedures (``MotorPositionX``,
``MotorPositionY`` ...), sharing nothing but the methodology.

Because every behaviour and unit comes from the single-axis builders with a
service suffix, the two-axis system is also a demonstration of the library's
composability: nothing in the single-axis code had to change.
"""

from repro.apps.motor_controller.comm_units import (
    DISTRIBUTION_INTERFACE,
    MOTOR_INTERFACE,
    SPEED_CONTROL_INTERFACE,
    build_motor_unit,
    build_sw_hw_unit,
)
from repro.apps.motor_controller.config import MotorControllerConfig
from repro.apps.motor_controller.distribution import build_distribution
from repro.apps.motor_controller.motor import MotorModel
from repro.apps.motor_controller.speed_control import build_speed_control
from repro.core.model import SystemModel
from repro.cosim.session import CosimSession

AXES = ("X", "Y")


def build_two_axis_system(config_x=None, config_y=None):
    """Build the 2-D table system model.

    Returns ``(model, {"X": config_x, "Y": config_y})``.
    """
    configs = {
        "X": config_x or MotorControllerConfig(),
        "Y": config_y or MotorControllerConfig(),
    }
    model = SystemModel(
        "TwoAxisTable",
        description="2-D positioning table: one Distribution + Speed Control chain "
                    "per axis, as motivated in the paper's section 4",
    )
    for axis in AXES:
        config = configs[axis]
        sw_hw_unit = model.add_comm_unit(
            build_sw_hw_unit(name=f"SwHwUnit{axis}", service_suffix=axis)
        )
        motor_unit = model.add_comm_unit(
            build_motor_unit(name=f"MotorUnit{axis}", service_suffix=axis)
        )
        distribution = model.add_software_module(
            build_distribution(config, name=f"DistributionMod{axis}",
                               service_suffix=axis)
        )
        speed_control = model.add_hardware_module(
            build_speed_control(config, name=f"SpeedControlMod{axis}",
                                service_suffix=axis)
        )
        model.bind_interface(distribution.name, sw_hw_unit.name,
                             DISTRIBUTION_INTERFACE)
        model.bind_interface(speed_control.name, sw_hw_unit.name,
                             SPEED_CONTROL_INTERFACE)
        model.bind_interface(speed_control.name, motor_unit.name, MOTOR_INTERFACE)
    return model, configs


def build_two_axis_session(config_x=None, config_y=None, clock_period=100,
                           sw_activation_period=None, library=None):
    """Build a co-simulation session of the 2-D table with both motors attached.

    The session carries the motor models as ``session.motors["X"]`` and
    ``session.motors["Y"]``.
    """
    model, configs = build_two_axis_system(config_x, config_y)
    session = CosimSession(
        model, library=library, clock_period=clock_period,
        sw_activation_period=sw_activation_period,
    )
    motors = {
        axis: MotorModel(
            start_position=configs[axis].start_position,
            min_pulse_period_ns=configs[axis].min_pulse_period_ns,
            name=f"motor{axis.lower()}",
        )
        for axis in AXES
    }

    def attach_motors(active_session):
        active_session.motors = motors
        for axis in AXES:
            motors[axis].attach(
                active_session.simulator,
                active_session.unit_signal(f"MotorUnit{axis}", "MOT_PULSE"),
                active_session.unit_signal(f"MotorUnit{axis}", "MOT_DIR"),
                active_session.unit_signal(f"MotorUnit{axis}", "MOT_SAMPLE_REG"),
            )

    session.add_environment(attach_motors)
    session.motors = motors
    session.configs = configs
    return session


def two_axis_observables(session, result):
    """Platform-independent outcome of a 2-D table run, per axis."""
    outcome = {}
    for axis in AXES:
        executor = session.software_executor(f"DistributionMod{axis}")
        outcome[axis] = {
            "position": session.motors[axis].position,
            "pulses": session.motors[axis].pulse_count,
            "missed_pulses": session.motors[axis].missed_pulses,
            "segments": executor.variables().get("SEGMENTS"),
            "finished": executor.finished,
        }
    return outcome
