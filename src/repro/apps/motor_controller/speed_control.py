"""The Speed Control subsystem (hardware) — paper Figure 7.

Three parallel units, each a clocked FSM process, cooperate through internal
signals of the module:

* **POSITION** — talks to the software: receives the motor constraints and
  each position command through the ``SpeedControl_Interface`` access
  procedures, hands the target to the CORE unit, and reports the reached
  position back with ``ReturnMotorState``.
* **CORE** — the control law: samples the motor coordinate
  (``ReadSampledData``), computes direction, speed (bounded by the limit),
  the residual position, and requests pulses from the TIMER unit until the
  residual is zero.
* **TIMER** — shapes the pulse train: emits one pulse per request through
  ``SendMotorPulses`` and enforces the inter-pulse gap derived from the
  commanded speed.

Internal signals (Figure 7's "simple VHDL signals"):

=============  =======  ====================================================
signal          writer   meaning
=============  =======  ====================================================
LIMITSIG        POSITION  speed limit received from the software
TARGETSIG       POSITION  target coordinate of the current segment
NEWTARGET       POSITION  request: a new target is available
BUSY            CORE      the core is working on a target
CURRENTSIG      CORE      latest sampled motor coordinate
DIRSIG          CORE      commanded direction (1 = forward)
SPEEDSIG        CORE      commanded speed (bounded by LIMITSIG)
PULSECMD        CORE      request: emit one pulse
PULSEACK        TIMER     acknowledge: pulse emitted, gap in progress
=============  =======  ====================================================
"""

from repro.core.module import HardwareModule
from repro.core.port import Port, PortDirection
from repro.ir.builder import FsmBuilder
from repro.ir.dtypes import BIT, word_type
from repro.ir.expr import BinOp, UnOp, port, var
from repro.ir.stmt import Assign, PortWrite


def _position_unit(suffix=""):
    word = word_type(16)
    build = FsmBuilder("POSITION")
    build.variable("LIMIT", word, 0)
    build.variable("TARGETPOS", word, 0)
    with build.state("Startup") as state:
        state.call(f"ReadMotorConstraints{suffix}", store="LIMIT", then="PublishLimit")
    with build.state("PublishLimit") as state:
        state.go("WaitPosition", actions=[PortWrite("LIMITSIG", var("LIMIT"))])
    with build.state("WaitPosition") as state:
        state.call(f"ReadMotorPosition{suffix}", store="TARGETPOS", then="Dispatch")
    with build.state("Dispatch") as state:
        state.go("WaitBusy", actions=[PortWrite("TARGETSIG", var("TARGETPOS")),
                                      PortWrite("NEWTARGET", 1)])
    with build.state("WaitBusy") as state:
        state.go("WaitDone", when=port("BUSY").eq(1),
                 actions=[PortWrite("NEWTARGET", 0)])
        state.stay()
    with build.state("WaitDone") as state:
        state.go("Report", when=port("BUSY").eq(0))
        state.stay()
    with build.state("Report") as state:
        state.call(f"ReturnMotorState{suffix}", args=[port("CURRENTSIG")], then="WaitPosition")
    return build.build(initial="Startup")


def _core_unit(pulse_gap_base, suffix=""):
    word = word_type(16)
    build = FsmBuilder("CORE")
    build.variable("MYTARGET", word, 0)
    build.variable("CURPOS", word, 0)
    build.variable("RESIDUAL", word, 0)
    with build.state("Idle") as state:
        state.go("Sample", when=port("NEWTARGET").eq(1),
                 actions=[Assign("MYTARGET", port("TARGETSIG")),
                          PortWrite("BUSY", 1)])
        state.stay()
    with build.state("Sample") as state:
        state.call(f"ReadSampledData{suffix}", store="CURPOS", then="Compute")
    with build.state("Compute") as state:
        # ComputeDirection / ComputeSpeed / ComputeResidualPosition
        state.do(
            Assign("RESIDUAL", UnOp("abs", BinOp("sub", var("MYTARGET"), var("CURPOS")))),
            PortWrite("CURRENTSIG", var("CURPOS")),
            PortWrite("DIRSIG", BinOp("gt", var("MYTARGET"), var("CURPOS"))),
            PortWrite("SPEEDSIG", BinOp("min", port("LIMITSIG"), var("RESIDUAL"))),
        )
        state.go("Finish", when=var("RESIDUAL").eq(0))
        state.go("Drive")
    with build.state("Drive") as state:
        state.go("WaitAck", actions=[PortWrite("PULSECMD", 1)])
    with build.state("WaitAck") as state:
        state.go("WaitAckClear", when=port("PULSEACK").eq(1),
                 actions=[PortWrite("PULSECMD", 0)])
        state.stay()
    with build.state("WaitAckClear") as state:
        state.go("Sample", when=port("PULSEACK").eq(0))
        state.stay()
    with build.state("Finish") as state:
        state.go("Idle", actions=[PortWrite("BUSY", 0), PortWrite("PULSECMD", 0)])
    return build.build(initial="Idle")


def _timer_unit(pulse_gap_base, suffix=""):
    word = word_type(16)
    build = FsmBuilder("TIMER")
    build.variable("GAPCNT", word, 0)
    with build.state("WaitCmd") as state:
        state.go("Send", when=port("PULSECMD").eq(1))
        state.stay()
    with build.state("Send") as state:
        # ComputePulseWide / SendMotorPulses
        state.call(f"SendMotorPulses{suffix}", args=[port("DIRSIG")], then="AckOn")
    with build.state("AckOn") as state:
        state.go("HoldAck", actions=[
            PortWrite("PULSEACK", 1),
            Assign("GAPCNT", BinOp("max", 0,
                                   BinOp("sub", pulse_gap_base, port("SPEEDSIG")))),
        ])
    with build.state("HoldAck") as state:
        state.go("Gap", when=port("PULSECMD").eq(0))
        state.stay()
    with build.state("Gap") as state:
        state.go("Release", when=var("GAPCNT").eq(0))
        state.stay(actions=[Assign("GAPCNT", var("GAPCNT") - 1)])
    with build.state("Release") as state:
        state.go("WaitCmd", actions=[PortWrite("PULSEACK", 0)])
    return build.build(initial="WaitCmd")


def build_speed_control(config, name="SpeedControlMod", service_suffix=""):
    """Build the Speed Control hardware module for the given scenario *config*.

    *service_suffix* must match the suffix used for the communication units
    this module is bound to (see :mod:`repro.apps.motor_controller.two_axis`).
    """
    word = word_type(16)
    internal = [
        Port("LIMITSIG", PortDirection.INOUT, word, "speed limit from software"),
        Port("TARGETSIG", PortDirection.INOUT, word, "target coordinate"),
        Port("NEWTARGET", PortDirection.INOUT, BIT, "new-target request"),
        Port("BUSY", PortDirection.INOUT, BIT, "core busy flag"),
        Port("CURRENTSIG", PortDirection.INOUT, word, "latest sampled coordinate"),
        Port("DIRSIG", PortDirection.INOUT, BIT, "commanded direction"),
        Port("SPEEDSIG", PortDirection.INOUT, word, "commanded speed"),
        Port("PULSECMD", PortDirection.INOUT, BIT, "pulse request"),
        Port("PULSEACK", PortDirection.INOUT, BIT, "pulse acknowledge"),
    ]
    processes = [
        _position_unit(service_suffix),
        _core_unit(config.pulse_gap_base, service_suffix),
        _timer_unit(config.pulse_gap_base, service_suffix),
    ]
    return HardwareModule(
        name, processes, internal_signals=internal,
        description="Speed Control subsystem: Position, Core and Timer units",
    )
