"""Configuration of the Adaptive Motor Controller scenario."""

from repro.utils.errors import ModelError


class MotorControllerConfig:
    """Parameters of one motor-control scenario (one axis).

    Parameters
    ----------
    final_position:
        Target coordinate the motor must reach (steps).
    segment:
        Travel distance handed to the hardware per command (steps); the
        Distribution subsystem splits the total travel into segments of this
        size ("the total translation distance of the motor is divided into
        segments and is sent to the Speed Control sub-system as bundles").
    speed_limit:
        Maximum speed parameter transmitted by ``SetupControl``; the Speed
        Control hardware never commands a speed above it.
    start_position:
        Initial motor coordinate.
    pulse_gap_base:
        Base value of the Timer unit's inter-pulse gap counter; together with
        the commanded speed it sets the pulse period.
    min_pulse_period_ns:
        Real-time constraint: the motor cannot accept pulses closer together
        than this.
    max_response_ns:
        Real-time constraint: maximum latency between the software command
        and the first motor pulse.
    """

    def __init__(self, final_position=40, segment=10, speed_limit=8,
                 start_position=0, pulse_gap_base=4,
                 min_pulse_period_ns=400, max_response_ns=1_000_000):
        if final_position <= start_position:
            raise ModelError("final_position must be beyond start_position")
        if segment <= 0:
            raise ModelError("segment must be positive")
        if speed_limit <= 0:
            raise ModelError("speed_limit must be positive")
        self.final_position = final_position
        self.segment = segment
        self.speed_limit = speed_limit
        self.start_position = start_position
        self.pulse_gap_base = pulse_gap_base
        self.min_pulse_period_ns = min_pulse_period_ns
        self.max_response_ns = max_response_ns

    @property
    def total_travel(self):
        return self.final_position - self.start_position

    @property
    def segments(self):
        """Number of position commands the Distribution subsystem issues."""
        travel = self.total_travel
        return (travel + self.segment - 1) // self.segment

    def __repr__(self):
        return (
            f"MotorControllerConfig(final={self.final_position}, segment={self.segment}, "
            f"speed_limit={self.speed_limit})"
        )
