"""Communication units of the Adaptive Motor Controller (paper Figure 5).

Two units connect the three parties:

* **SwHwUnit** — the SW/HW communication unit.  It contains two handshake
  channels: the *command* channel (software → hardware, carrying both the
  motor constraints and the position commands, distinguished by a tag) and
  the *status* channel (hardware → software, carrying the reached position).
  The software-side access procedures form the ``Distribution_Interface``
  (``SetupControl``, ``MotorPosition``, ``ReadMotorState``); the
  hardware-side procedures form the ``SpeedControl_Interface``
  (``ReadMotorConstraints``, ``ReadMotorPosition``, ``ReturnMotorState``).
* **MotorUnit** — the HW/HW communication unit (``Motor_Interface``): the
  pulse/direction lines towards the motor and the sampled-coordinate
  register coming back (``SendMotorPulses``, ``ReadSampledData``).
"""

from repro.comm.protocols.handshake import (
    handshake_ports,
    make_get_service,
    make_handshake_controller,
    make_put_service,
)
from repro.comm.protocols.shared_reg import (
    make_shared_get_service,
    shared_register_ports,
)
from repro.core.comm_unit import CommunicationUnit
from repro.core.port import Port, PortDirection
from repro.core.service import Service, ServiceParam
from repro.ir.builder import FsmBuilder
from repro.ir.dtypes import BIT, word_type
from repro.ir.expr import var
from repro.ir.stmt import PortWrite

#: Channel prefixes inside the SW/HW unit.
CMD_PREFIX = "CMD_"
STAT_PREFIX = "STAT_"

#: Command tags on the command channel.
TAG_CONSTRAINTS = 1
TAG_POSITION = 2

#: Interface names (the paper's vocabulary).
DISTRIBUTION_INTERFACE = "Distribution_Interface"
SPEED_CONTROL_INTERFACE = "SpeedControl_Interface"
MOTOR_INTERFACE = "Motor_Interface"


def build_sw_hw_unit(name="SwHwUnit", data_width=16, service_suffix=""):
    """Build the SW/HW communication unit of Figure 5.

    *service_suffix* renames every access procedure (``SetupControlX`` ...)
    so one system model can contain one unit instance per motor axis.
    """
    ports = handshake_ports(CMD_PREFIX, data_width, with_tag=True)
    ports += handshake_ports(STAT_PREFIX, data_width)

    services = [
        # Software side: Distribution_Interface access procedures.
        make_put_service(f"SetupControl{service_suffix}", CMD_PREFIX, data_width,
                         tag=TAG_CONSTRAINTS, interface=DISTRIBUTION_INTERFACE,
                         param_name="CONSTRAINT",
                         description="send the motor constraints to the hardware"),
        make_put_service(f"MotorPosition{service_suffix}", CMD_PREFIX, data_width,
                         tag=TAG_POSITION, interface=DISTRIBUTION_INTERFACE,
                         param_name="POSITION",
                         description="send the next position coordinate"),
        make_get_service(f"ReadMotorState{service_suffix}", STAT_PREFIX, data_width,
                         interface=DISTRIBUTION_INTERFACE, result_name="STATE",
                         description="wait for and read the motor state report"),
        # Hardware side: SpeedControl_Interface access procedures.
        make_get_service(f"ReadMotorConstraints{service_suffix}", CMD_PREFIX, data_width,
                         tag=TAG_CONSTRAINTS, interface=SPEED_CONTROL_INTERFACE,
                         result_name="CONSTRAINT",
                         description="receive the motor constraints"),
        make_get_service(f"ReadMotorPosition{service_suffix}", CMD_PREFIX, data_width,
                         tag=TAG_POSITION, interface=SPEED_CONTROL_INTERFACE,
                         result_name="POSITION",
                         description="receive the next position coordinate"),
        make_put_service(f"ReturnMotorState{service_suffix}", STAT_PREFIX, data_width,
                         interface=SPEED_CONTROL_INTERFACE, param_name="STATE",
                         description="report the reached motor state"),
    ]
    controllers = [
        make_handshake_controller("CmdCtrl", CMD_PREFIX, with_tag=True),
        make_handshake_controller("StatCtrl", STAT_PREFIX),
    ]
    return CommunicationUnit(
        name, ports=ports, services=services, controllers=controllers,
        description="SW/HW communication unit (command + status handshake channels)",
    )


def _make_send_pulses_service(data_width=16, service_suffix=""):
    """``SendMotorPulses(DIRECTION)``: drive one pulse with its direction."""
    build = FsmBuilder(f"SendMotorPulses{service_suffix}")
    build.variable("DIRECTION", word_type(1), 0)
    build.ports("MOT_PULSE", "MOT_DIR")
    with build.state("DRIVE") as state:
        state.go("PULSE", actions=[PortWrite("MOT_DIR", var("DIRECTION")),
                                   PortWrite("MOT_PULSE", 1)])
    with build.state("PULSE") as state:
        state.go("IDLE", actions=[PortWrite("MOT_PULSE", 0)])
    with build.state("IDLE", done=True) as state:
        state.go("DRIVE")
    fsm = build.build(initial="DRIVE")
    return Service(
        f"SendMotorPulses{service_suffix}", fsm,
        params=[ServiceParam("DIRECTION", word_type(1))],
        interface=MOTOR_INTERFACE,
        description="emit one motor control pulse in the given direction",
    )


def build_motor_unit(name="MotorUnit", data_width=16, service_suffix=""):
    """Build the HW/HW communication unit towards the motor (Motor_Interface)."""
    ports = [
        Port("MOT_PULSE", PortDirection.OUT, BIT, "motor step pulse"),
        Port("MOT_DIR", PortDirection.OUT, BIT, "motor step direction"),
    ]
    ports += shared_register_ports("MOT_SAMPLE_", data_width)
    services = [
        _make_send_pulses_service(data_width, service_suffix),
        make_shared_get_service(f"ReadSampledData{service_suffix}", "MOT_SAMPLE_",
                                data_width, interface=MOTOR_INTERFACE,
                                result_name="COORD"),
    ]
    return CommunicationUnit(
        name, ports=ports, services=services,
        description="HW/HW communication unit: pulse/direction lines and sampled "
                    "coordinate register",
    )
