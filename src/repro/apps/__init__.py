"""Example applications built on the unified co-design model."""
