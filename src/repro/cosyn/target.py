"""Target architecture description.

The paper assumes hardware/software partitioning is already done; the target
architecture therefore only records *where* each (already classified) module
goes and which platform provides the processor, the communication resources
and the programmable hardware.
"""

from repro.core.module import HardwareModule, SoftwareModule
from repro.platforms.base import Platform
from repro.utils.errors import SynthesisError


class TargetArchitecture:
    """A platform plus the placement of the model's modules onto it."""

    def __init__(self, model, platform, address_base=None, hw_clock_ns=None):
        if not isinstance(platform, Platform):
            raise SynthesisError("platform must be a Platform instance")
        self.model = model
        self.platform = platform
        self.address_base = address_base
        self._hw_clock_ns = hw_clock_ns
        if not platform.has_hardware and model.hardware_modules():
            raise SynthesisError(
                f"platform {platform.name!r} has no programmable hardware but the "
                f"model contains hardware modules "
                f"{[m.name for m in model.hardware_modules()]}"
            )

    # ------------------------------------------------------------------ query

    def software_modules(self):
        return self.model.software_modules()

    def hardware_modules(self):
        return self.model.hardware_modules()

    def hw_clock_ns(self):
        """Clock period offered to the synthesized hardware."""
        if self._hw_clock_ns is not None:
            return self._hw_clock_ns
        period = self.platform.hardware_clock_ns()
        return period if period is not None else 100

    def units_used_by_software(self):
        """Communication units reached by at least one software module."""
        units = []
        for module in self.software_modules():
            for service_name in module.services_used():
                unit = self.model.unit_for(module.name, service_name)
                if unit not in units:
                    units.append(unit)
        return units

    def address_map(self):
        """Physical addresses (or queue ids) of every SW-visible unit port."""
        port_names = []
        for unit in self.units_used_by_software():
            for port_name in unit.ports:
                qualified = f"{unit.name}_{port_name}"
                if qualified not in port_names:
                    port_names.append(qualified)
        # The SW views reference ports by their unqualified name inside one
        # unit; addresses are assigned per unit in declaration order so both
        # the software and the hardware interface agree on the layout.
        flat = []
        for unit in self.units_used_by_software():
            flat.extend(unit.ports)
        return self.platform.assign_addresses(flat, base=self.address_base)

    def port_syntax(self):
        """The port-access syntax software views are generated with."""
        flat = []
        for unit in self.units_used_by_software():
            flat.extend(unit.ports)
        return self.platform.port_syntax(flat, base=self.address_base)

    def __repr__(self):
        return (
            f"TargetArchitecture({self.model.name} on {self.platform.name}, "
            f"sw={[m.name for m in self.software_modules()]}, "
            f"hw={[m.name for m in self.hardware_modules()]})"
        )
