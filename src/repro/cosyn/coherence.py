"""Coherence between co-simulation and co-synthesis (paper problem #2).

The paper's second challenge is that, with separate environments, the
descriptions used for co-simulation and for co-synthesis drift apart.  In
this flow both start from the same model, so the remaining question is
whether the *synthesized* system still behaves like the functional
co-simulation once the platform's real timing is applied.

:func:`check_coherence` therefore runs the system twice through the same
co-simulation backplane:

* a **functional run** with the nominal clock (what the paper calls the
  co-simulation step), and
* a **platform-timed run** whose hardware clock is the clock achieved by
  hardware synthesis and whose software activation period is the worst-case
  per-activation time estimated by software synthesis (back-annotation),

then compares a user-supplied set of observables (final motor position,
number of pulses, words exchanged ...).  Matching observables demonstrate
the coherence claim; mismatches are listed with both values.
"""

from repro.utils.text import format_table


class CoherenceReport:
    """Comparison of observables between the two runs."""

    def __init__(self, functional, platform_timed, functional_timing, platform_timing):
        self.functional = dict(functional)
        self.platform_timed = dict(platform_timed)
        self.functional_timing = dict(functional_timing)
        self.platform_timing = dict(platform_timing)
        self.differences = {
            key: (self.functional.get(key), self.platform_timed.get(key))
            for key in set(self.functional) | set(self.platform_timed)
            if self.functional.get(key) != self.platform_timed.get(key)
        }

    @property
    def coherent(self):
        return not self.differences

    def as_table(self):
        rows = []
        for key in sorted(set(self.functional) | set(self.platform_timed)):
            functional = self.functional.get(key)
            timed = self.platform_timed.get(key)
            rows.append((key, functional, timed, "ok" if functional == timed else "DIFF"))
        return format_table(
            ["observable", "co-simulation", "synthesized system", "status"], rows
        )

    def report(self):
        lines = ["coherence check: co-simulation vs synthesized implementation", ""]
        lines.append(self.as_table())
        lines.append("")
        lines.append(
            "timing: functional run "
            f"(clock {self.functional_timing.get('clock_ns')} ns, "
            f"activation {self.functional_timing.get('activation_ns')} ns) vs "
            f"platform run (clock {self.platform_timing.get('clock_ns')} ns, "
            f"activation {self.platform_timing.get('activation_ns')} ns)"
        )
        lines.append(
            "result: " + ("COHERENT" if self.coherent else f"{len(self.differences)} differences")
        )
        return "\n".join(lines)

    def __repr__(self):
        return f"CoherenceReport(coherent={self.coherent})"


def check_coherence(session_factory, observables, cosynthesis_result,
                    functional_clock_ns=100, run_kwargs=None):
    """Run the functional and the platform-timed simulations and compare them.

    Parameters
    ----------
    session_factory:
        Callable ``session_factory(clock_period, sw_activation_period)``
        returning a fresh, un-run :class:`~repro.cosim.session.CosimSession`.
    observables:
        Callable ``observables(session, result) -> dict`` extracting the
        values to compare (must be platform independent: counts, final
        positions, final states — not absolute times).
    cosynthesis_result:
        The :class:`~repro.cosyn.flow.CosynthesisResult` whose timing is
        back-annotated into the second run.
    functional_clock_ns:
        Nominal clock of the functional run.
    run_kwargs:
        Extra keyword arguments passed to ``session.run_until_software_done``.
    """
    run_kwargs = dict(run_kwargs or {})

    functional_session = session_factory(functional_clock_ns, functional_clock_ns)
    functional_result = functional_session.run_until_software_done(**run_kwargs)
    functional_obs = observables(functional_session, functional_result)

    platform_clock = max(1, int(round(cosynthesis_result.system_clock_ns())))
    activation = max(platform_clock,
                     int(round(cosynthesis_result.software_activation_ns())) or platform_clock)
    platform_session = session_factory(platform_clock, activation)
    platform_result = platform_session.run_until_software_done(**run_kwargs)
    platform_obs = observables(platform_session, platform_result)

    return CoherenceReport(
        functional_obs,
        platform_obs,
        {"clock_ns": functional_clock_ns, "activation_ns": functional_clock_ns,
         "end_time_ns": functional_result.end_time},
        {"clock_ns": platform_clock, "activation_ns": activation,
         "end_time_ns": platform_result.end_time},
    )
