"""Software synthesis.

For every software module of the target, software synthesis

1. selects the **SW synthesis views** of the services the module calls —
   generated with the target platform's port-access syntax and physical
   address map,
2. emits the complete C program (module FSM + service views + activation
   loop) that would be handed to the platform's C compiler,
3. estimates code size and per-activation timing so the flow can check the
   software side of the real-time constraints.
"""

from repro.ir.visitor import iter_statements, iter_expressions
from repro.ir.expr import PortRef
from repro.ir.stmt import PortWrite
from repro.swc.emitter import emit_program, emit_module_function, emit_service_view
from repro.utils.errors import SynthesisError
from repro.utils.text import format_table


class SoftwareSynthesisResult:
    """Everything software synthesis produced for one module."""

    def __init__(self, module, platform_name, program_text, service_views,
                 address_map, metrics):
        self.module = module
        self.platform_name = platform_name
        self.program_text = program_text
        self.service_views = dict(service_views)
        self.address_map = dict(address_map)
        self.metrics = dict(metrics)

    @property
    def code_size_bytes(self):
        return self.metrics["code_size_bytes"]

    @property
    def worst_activation_ns(self):
        return self.metrics["worst_activation_ns"]

    def as_dict(self, include_text=False):
        """JSON-serializable summary (set *include_text* for the C program)."""
        data = {
            "module": self.module.name,
            "platform": self.platform_name,
            "metrics": dict(self.metrics),
            "address_map": dict(self.address_map),
            "services": sorted(self.service_views),
        }
        if include_text:
            data["program_text"] = self.program_text
            data["service_views"] = dict(self.service_views)
        return data

    def report(self):
        rows = [(key, value) for key, value in sorted(self.metrics.items())]
        return (
            f"software synthesis of {self.module.name} for {self.platform_name}\n"
            + format_table(["metric", "value"], rows)
        )

    def __repr__(self):
        return (
            f"SoftwareSynthesisResult({self.module.name}@{self.platform_name}, "
            f"{self.code_size_bytes} bytes)"
        )


def _fsm_access_counts(fsm):
    """(statements, port reads, port writes) of one FSM (whole-FSM totals)."""
    statements = sum(1 for _ in iter_statements(fsm))
    reads = sum(1 for expr in iter_expressions(fsm) if isinstance(expr, PortRef))
    writes = sum(1 for stmt in iter_statements(fsm) if isinstance(stmt, PortWrite))
    return statements, reads, writes


def _worst_state_costs(fsm):
    """Worst-case per-step statement and access counts over the FSM states."""
    worst = (1, 0, 0)
    for state in fsm.iter_states():
        statements = len(state.actions)
        reads = 0
        writes = 0
        for stmt in state.actions:
            writes += 1 if isinstance(stmt, PortWrite) else 0
        for transition in state.transitions:
            statements += len(transition.actions) + (1 if transition.guard else 0)
            for stmt in transition.actions:
                writes += 1 if isinstance(stmt, PortWrite) else 0
        reads = sum(
            1 for expr in _state_expressions(state) if isinstance(expr, PortRef)
        )
        candidate = (max(statements, 1), reads, writes)
        if candidate[0] + candidate[1] + candidate[2] > sum(worst):
            worst = candidate
    return worst


def _state_expressions(state):
    from repro.ir.visitor import iter_stmt_expressions, iter_expr_tree
    for stmt in state.actions:
        yield from iter_stmt_expressions(stmt)
    for transition in state.transitions:
        if transition.guard is not None:
            yield from iter_expr_tree(transition.guard)
        for stmt in transition.actions:
            yield from iter_stmt_expressions(stmt)
        if transition.call is not None:
            for arg in transition.call.args:
                yield from iter_expr_tree(arg)


def estimate_software_metrics(platform, fsm, services):
    """Code-size / activation-timing metrics of one software FSM on *platform*.

    The metrics depend only on the FSM, the service views it calls and the
    platform timing model — **not** on the rest of the placement — which is
    what lets :mod:`repro.dse` memoize them per (module, side, platform).
    """
    module_statements, _, _ = _fsm_access_counts(fsm)
    total_statements = module_statements
    total_reads = 0
    total_writes = 0
    worst_statements, worst_reads, worst_writes = _worst_state_costs(fsm)
    for service in services:
        statements, reads, writes = _fsm_access_counts(service.fsm)
        total_statements += statements
        total_reads += reads
        total_writes += writes
        service_worst = _worst_state_costs(service.fsm)
        worst_statements = max(worst_statements, service_worst[0] + 2)
        worst_reads = max(worst_reads, service_worst[1])
        worst_writes = max(worst_writes, service_worst[2])

    instructions = total_statements * 4 + 12 * (
        len(fsm.states) + sum(len(s.fsm.states) for s in services)
    )
    code_size_bytes = instructions * 3  # average 386 instruction length
    worst_activation_ns = platform.software_activation_ns(
        statements=worst_statements, reads=worst_reads, writes=worst_writes
    )
    typical_activation_ns = platform.software_activation_ns(
        statements=max(2, worst_statements // 2), reads=min(worst_reads, 1),
        writes=min(worst_writes, 1),
    )
    return {
        "statements": total_statements,
        "estimated_instructions": instructions,
        "code_size_bytes": code_size_bytes,
        "worst_activation_ns": round(worst_activation_ns, 1),
        "typical_activation_ns": round(typical_activation_ns, 1),
        "port_reads": total_reads,
        "port_writes": total_writes,
        "services": len(services),
    }


def synthesize_software(target, module):
    """Run software synthesis for one module of a target architecture."""
    if module not in target.software_modules():
        raise SynthesisError(
            f"module {module.name!r} is not a software module of this target"
        )
    platform = target.platform
    syntax = target.port_syntax()
    address_map = target.address_map()

    services = []
    for service_name in module.services_used():
        unit = target.model.unit_for(module.name, service_name)
        services.append(unit.service(service_name))

    program_text = emit_program(module, services, syntax, platform_name=platform.name)
    service_views = {
        service.name: emit_service_view(service, syntax) for service in services
    }

    metrics = estimate_software_metrics(platform, module.fsm, services)
    return SoftwareSynthesisResult(
        module, platform.name, program_text, service_views, address_map, metrics
    )
