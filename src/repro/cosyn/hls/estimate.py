"""Area and timing estimation against the XC4000 device model.

The estimator answers the two questions the paper's prototype had to answer:
does the synthesized Speed Control subsystem fit the FPGA, and can it run at
the clock the ISA bus and the motor's real-time constraints require.
"""

from repro.platforms.fpga import operator_clbs, operator_delay_ns
from repro.utils.errors import SynthesisError


class AreaTimingEstimate:
    """Area/timing numbers of one synthesized FSMD (or a set of them)."""

    def __init__(self, name, clbs_datapath=0, clbs_registers=0, clbs_controller=0,
                 clbs_interconnect=0, critical_path_ns=0.0, flip_flops=0):
        self.name = name
        self.clbs_datapath = clbs_datapath
        self.clbs_registers = clbs_registers
        self.clbs_controller = clbs_controller
        self.clbs_interconnect = clbs_interconnect
        self.critical_path_ns = critical_path_ns
        self.flip_flops = flip_flops

    @property
    def clbs_total(self):
        return (self.clbs_datapath + self.clbs_registers + self.clbs_controller
                + self.clbs_interconnect)

    @property
    def max_frequency_hz(self):
        if self.critical_path_ns <= 0:
            return None
        return 1e9 / self.critical_path_ns

    def min_clock_ns(self):
        return self.critical_path_ns

    def fits(self, device):
        return device.fits(self.clbs_total, self.flip_flops)

    def merge(self, other, name=None):
        """Combine two estimates (modules synthesized side by side)."""
        return AreaTimingEstimate(
            name or f"{self.name}+{other.name}",
            clbs_datapath=self.clbs_datapath + other.clbs_datapath,
            clbs_registers=self.clbs_registers + other.clbs_registers,
            clbs_controller=self.clbs_controller + other.clbs_controller,
            clbs_interconnect=self.clbs_interconnect + other.clbs_interconnect,
            critical_path_ns=max(self.critical_path_ns, other.critical_path_ns),
            flip_flops=self.flip_flops + other.flip_flops,
        )

    def as_dict(self):
        return {
            "name": self.name,
            "clbs_datapath": self.clbs_datapath,
            "clbs_registers": self.clbs_registers,
            "clbs_controller": self.clbs_controller,
            "clbs_interconnect": self.clbs_interconnect,
            "clbs_total": self.clbs_total,
            "flip_flops": self.flip_flops,
            "critical_path_ns": round(self.critical_path_ns, 2),
            "max_frequency_mhz": round(self.max_frequency_hz / 1e6, 2)
            if self.max_frequency_hz else None,
        }

    def __repr__(self):
        return (
            f"AreaTimingEstimate({self.name}, {self.clbs_total} CLBs, "
            f"{self.critical_path_ns:.1f} ns)"
        )


#: CLBs per register bit (two flip-flops per CLB in the XC4000 family).
_CLBS_PER_REGISTER_BIT = 0.5
#: CLBs per controller state bit of one-hot-ish next-state logic.
_CLBS_PER_CONTROLLER_BIT = 3
#: Register setup + clock-to-output overhead added to the combinational path.
_SEQUENCING_OVERHEAD_NS = 6.0
#: Extra delay per multiplexer level in front of a functional unit.
_MUX_DELAY_NS = 6.0


def estimate_fsmd(fsmd, width=16, register_width=None):
    """Estimate area and critical path of one FSMD."""
    allocation = fsmd.allocation
    register_width = register_width or width

    clbs_datapath = 0
    for unit in allocation.functional_units:
        if not unit.operators:
            continue
        clbs_datapath += max(operator_clbs(op, width) for op in unit.operators)

    register_bits = allocation.register_count() * register_width
    clbs_registers = int(round(register_bits * _CLBS_PER_REGISTER_BIT))
    flip_flops = register_bits + fsmd.controller_bits()

    clbs_controller = fsmd.controller_bits() * _CLBS_PER_CONTROLLER_BIT
    clbs_controller += max(1, len(fsmd.transitions) // 4)

    clbs_interconnect = allocation.mux_inputs * operator_clbs("mux", width) // 2

    critical_path = _SEQUENCING_OVERHEAD_NS
    slowest_op = 0.0
    for unit in allocation.functional_units:
        if not unit.operators:
            continue
        slowest_op = max(
            slowest_op, max(operator_delay_ns(op, width) for op in unit.operators)
        )
    mux_levels = 1 if allocation.mux_inputs else 0
    critical_path += slowest_op + mux_levels * _MUX_DELAY_NS

    return AreaTimingEstimate(
        fsmd.fsm.name,
        clbs_datapath=clbs_datapath,
        clbs_registers=clbs_registers,
        clbs_controller=clbs_controller,
        clbs_interconnect=clbs_interconnect,
        critical_path_ns=critical_path,
        flip_flops=flip_flops,
    )


def estimate_module(fsmds, name, width=16):
    """Merge the estimates of several FSMDs (the processes of one module)."""
    if not fsmds:
        raise SynthesisError("estimate_module needs at least one FSMD")
    estimates = [estimate_fsmd(fsmd, width=width) for fsmd in fsmds]
    total = estimates[0]
    for other in estimates[1:]:
        total = total.merge(other)
    total.name = name
    return total, estimates
