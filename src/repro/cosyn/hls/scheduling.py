"""Operation scheduling into control steps.

Three classic algorithms are provided:

* **ASAP** — every operation as early as its dependencies allow,
* **ALAP** — as late as a given latency bound allows,
* **list scheduling** — resource-constrained; operations compete for a fixed
  number of functional units per class, priority is ALAP slack (critical
  operations first).

The default resource constraint used by the flow (one ALU, one comparator,
one multiplier, one divider) reflects the small XC4000 parts of the paper's
prototype board.
"""

from repro.cosyn.hls.dfg import OPERATOR_CLASS
from repro.utils.errors import SynthesisError

#: Default number of functional units available per class.
DEFAULT_RESOURCES = {
    "alu": 1,
    "cmp": 1,
    "logic": 2,
    "mult": 1,
    "divider": 1,
    "move": 4,
}


class Schedule:
    """Assignment of operations to control steps for one state DFG."""

    def __init__(self, dfg, assignment, resources=None):
        self.dfg = dfg
        self.assignment = dict(assignment)
        self.resources = dict(resources or {})

    @property
    def length(self):
        """Number of control steps (0 for an empty DFG)."""
        if not self.assignment:
            return 0
        return max(self.assignment.values()) + 1

    def operations_in_step(self, step):
        return [op for op in self.dfg.operations if self.assignment[op.op_id] == step]

    def step_of(self, op_id):
        return self.assignment[op_id]

    def fu_usage(self):
        """Maximum number of simultaneously busy units per class."""
        usage = {}
        for step in range(self.length):
            per_class = {}
            for operation in self.operations_in_step(step):
                per_class[operation.fu_class] = per_class.get(operation.fu_class, 0) + 1
            for fu_class, count in per_class.items():
                usage[fu_class] = max(usage.get(fu_class, 0), count)
        return usage

    def verify(self):
        """Check dependency and resource constraints; returns problem list."""
        problems = []
        for producer, consumer in self.dfg.edges:
            if self.assignment[producer] > self.assignment[consumer]:
                problems.append(
                    f"dependency violated: {producer} scheduled after {consumer}"
                )
        if self.resources:
            for step in range(self.length):
                per_class = {}
                for operation in self.operations_in_step(step):
                    per_class[operation.fu_class] = per_class.get(operation.fu_class, 0) + 1
                for fu_class, count in per_class.items():
                    limit = self.resources.get(fu_class)
                    if limit is not None and count > limit:
                        problems.append(
                            f"step {step}: {count} {fu_class} operations exceed limit {limit}"
                        )
        return problems

    def __repr__(self):
        return f"Schedule({self.dfg.state_name}, steps={self.length}, ops={len(self.dfg)})"


def asap_schedule(dfg):
    """As-soon-as-possible schedule (unconstrained resources)."""
    assignment = {}
    remaining = {op.op_id for op in dfg.operations}
    guard = 0
    while remaining:
        placed = []
        for op_id in sorted(remaining):
            preds = dfg.predecessors(op_id)
            if all(pred in assignment for pred in preds):
                step = max((assignment[pred] + 1 for pred in preds), default=0)
                assignment[op_id] = step
                placed.append(op_id)
        if not placed:
            raise SynthesisError(
                f"cycle detected in data-flow graph of state {dfg.state_name!r}"
            )
        remaining.difference_update(placed)
        guard += 1
        if guard > 10_000:
            raise SynthesisError("ASAP scheduling did not converge")
    return Schedule(dfg, assignment)


def alap_schedule(dfg, latency=None):
    """As-late-as-possible schedule for a given latency bound."""
    asap = asap_schedule(dfg)
    bound = latency if latency is not None else asap.length
    if bound < asap.length:
        raise SynthesisError(
            f"latency bound {bound} is below the critical path {asap.length}"
        )
    assignment = {}
    remaining = {op.op_id for op in dfg.operations}
    while remaining:
        placed = []
        for op_id in sorted(remaining):
            succs = dfg.successors(op_id)
            if all(succ in assignment for succ in succs):
                step = min((assignment[succ] - 1 for succ in succs), default=bound - 1)
                assignment[op_id] = step
                placed.append(op_id)
        if not placed:
            raise SynthesisError(
                f"cycle detected in data-flow graph of state {dfg.state_name!r}"
            )
        remaining.difference_update(placed)
    return Schedule(dfg, assignment)


def list_schedule(dfg, resources=None):
    """Resource-constrained list scheduling (priority = ALAP urgency)."""
    resources = dict(DEFAULT_RESOURCES if resources is None else resources)
    if not dfg.operations:
        return Schedule(dfg, {}, resources)
    for operation in dfg.operations:
        limit = resources.get(operation.fu_class, 0)
        if limit < 1:
            raise SynthesisError(
                f"no functional unit of class {operation.fu_class!r} available for "
                f"operation {operation.op_id}"
            )
    alap = alap_schedule(dfg)
    priority = {op_id: alap.assignment[op_id] for op_id in alap.assignment}
    assignment = {}
    unscheduled = {op.op_id for op in dfg.operations}
    step = 0
    while unscheduled:
        used = {}
        ready = [
            op_id for op_id in unscheduled
            if all(pred in assignment and assignment[pred] < step
                   for pred in dfg.predecessors(op_id))
        ]
        # Most urgent first (smallest ALAP step), stable by id for determinism.
        ready.sort(key=lambda op_id: (priority[op_id], op_id))
        for op_id in ready:
            fu_class = dfg.operation(op_id).fu_class
            limit = resources.get(fu_class, 1)
            if used.get(fu_class, 0) < limit:
                assignment[op_id] = step
                used[fu_class] = used.get(fu_class, 0) + 1
        scheduled_now = [op_id for op_id in ready if assignment.get(op_id) == step]
        unscheduled.difference_update(scheduled_now)
        step += 1
        if step > 10_000:
            raise SynthesisError("list scheduling did not converge")
    return Schedule(dfg, assignment, resources)
