"""Data-flow graph extraction.

For every FSM state the statements (state actions plus the actions and
guards of its transitions) are flattened into a small data-flow graph of
*operations*.  An operation corresponds to one arithmetic/logic operator
instance; its inputs are constants, variables, port reads or the outputs of
earlier operations of the same state.

The DFG is intentionally per-state: the FSM structure already provides the
coarse control steps, high-level synthesis only has to schedule the work
*inside* each state.
"""

import itertools

from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.utils.errors import SynthesisError

#: Functional-unit class of each operator.
OPERATOR_CLASS = {
    "add": "alu", "sub": "alu", "neg": "alu", "abs": "alu",
    "min": "alu", "max": "alu",
    "eq": "cmp", "ne": "cmp", "lt": "cmp", "le": "cmp", "gt": "cmp", "ge": "cmp",
    "and": "logic", "or": "logic", "xor": "logic", "not": "logic",
    "mul": "mult",
    "div": "divider", "mod": "divider",
    "mov": "move",
}


class Operation:
    """One operator instance of a state's data-flow graph."""

    def __init__(self, op_id, op, inputs, width=16, writes_port=None, defines=None):
        self.op_id = op_id
        self.op = op
        self.inputs = tuple(inputs)
        self.width = width
        self.writes_port = writes_port
        self.defines = defines
        self.fu_class = OPERATOR_CLASS.get(op, "alu")

    def __repr__(self):
        target = self.defines or self.writes_port or "_"
        return f"Operation({self.op_id}: {target} = {self.op}{list(self.inputs)})"


class DataFlowGraph:
    """Operations plus dependency edges for one FSM state."""

    def __init__(self, state_name):
        self.state_name = state_name
        self.operations = []
        self.edges = []
        self.port_reads = []
        self.port_writes = []

    def add_operation(self, operation):
        self.operations.append(operation)
        return operation

    def add_edge(self, producer_id, consumer_id):
        self.edges.append((producer_id, consumer_id))

    def predecessors(self, op_id):
        return [src for src, dst in self.edges if dst == op_id]

    def successors(self, op_id):
        return [dst for src, dst in self.edges if src == op_id]

    def operation(self, op_id):
        for operation in self.operations:
            if operation.op_id == op_id:
                return operation
        raise SynthesisError(f"unknown operation id {op_id}")

    def roots(self):
        """Operations with no predecessors."""
        have_preds = {dst for _, dst in self.edges}
        return [op for op in self.operations if op.op_id not in have_preds]

    def critical_length(self):
        """Length (in operations) of the longest dependency chain."""
        memo = {}

        def depth(op_id):
            if op_id in memo:
                return memo[op_id]
            preds = self.predecessors(op_id)
            value = 1 + (max(depth(p) for p in preds) if preds else 0)
            memo[op_id] = value
            return value

        return max((depth(op.op_id) for op in self.operations), default=0)

    def operator_histogram(self):
        counts = {}
        for operation in self.operations:
            counts[operation.op] = counts.get(operation.op, 0) + 1
        return counts

    def __len__(self):
        return len(self.operations)

    def __repr__(self):
        return f"DataFlowGraph({self.state_name}, ops={len(self.operations)})"


class _Extractor:
    """Walks statements of one state and builds the DFG."""

    def __init__(self, state_name, width=16):
        self.dfg = DataFlowGraph(state_name)
        self.width = width
        self._ids = itertools.count(1)
        # variable name -> op_id of its latest definition inside the state
        self._last_def = {}

    def _new_id(self):
        return f"{self.dfg.state_name}_op{next(self._ids)}"

    def _expr_sources(self, expr):
        """Return (inputs, producer_ids) describing *expr* for an operation."""
        if isinstance(expr, Const):
            return [("const", expr.value)], []
        if isinstance(expr, Var):
            producer = self._last_def.get(expr.name)
            return [("var", expr.name)], [producer] if producer else []
        if isinstance(expr, PortRef):
            if expr.port_name not in self.dfg.port_reads:
                self.dfg.port_reads.append(expr.port_name)
            return [("port", expr.port_name)], []
        # Compound expression: emit an operation and reference its result.
        op_id = self._emit_expr(expr)
        return [("op", op_id)], [op_id]

    def _emit_expr(self, expr):
        if isinstance(expr, BinOp):
            left_inputs, left_deps = self._expr_sources(expr.left)
            right_inputs, right_deps = self._expr_sources(expr.right)
            op_id = self._new_id()
            operation = Operation(op_id, expr.op, left_inputs + right_inputs,
                                  width=self.width)
            self.dfg.add_operation(operation)
            for dep in left_deps + right_deps:
                self.dfg.add_edge(dep, op_id)
            return op_id
        if isinstance(expr, UnOp):
            inputs, deps = self._expr_sources(expr.operand)
            op_id = self._new_id()
            operation = Operation(op_id, expr.op, inputs, width=self.width)
            self.dfg.add_operation(operation)
            for dep in deps:
                self.dfg.add_edge(dep, op_id)
            return op_id
        raise SynthesisError(f"cannot extract operations from {expr!r}")

    def _value_of(self, expr, kind, target):
        """Produce an operation computing *expr* (a move when it is simple)."""
        if isinstance(expr, (Const, Var, PortRef)):
            inputs, deps = self._expr_sources(expr)
            op_id = self._new_id()
            operation = Operation(
                op_id, "mov", inputs, width=self.width,
                writes_port=target if kind == "port" else None,
                defines=target if kind == "var" else None,
            )
            self.dfg.add_operation(operation)
            for dep in deps:
                self.dfg.add_edge(dep, op_id)
            return op_id
        op_id = self._emit_expr(expr)
        operation = self.dfg.operation(op_id)
        if kind == "port":
            operation.writes_port = target
        else:
            operation.defines = target
        return op_id

    def statement(self, stmt, guard_deps=()):
        if isinstance(stmt, Assign):
            op_id = self._value_of(stmt.expr, "var", stmt.target)
            for dep in guard_deps:
                self.dfg.add_edge(dep, op_id)
            self._last_def[stmt.target] = op_id
        elif isinstance(stmt, PortWrite):
            op_id = self._value_of(stmt.expr, "port", stmt.port_name)
            for dep in guard_deps:
                self.dfg.add_edge(dep, op_id)
            if stmt.port_name not in self.dfg.port_writes:
                self.dfg.port_writes.append(stmt.port_name)
        elif isinstance(stmt, If):
            cond_id = None
            if isinstance(stmt.cond, (BinOp, UnOp)):
                cond_id = self._emit_expr(stmt.cond)
            deps = list(guard_deps) + ([cond_id] if cond_id else [])
            for inner in stmt.then + stmt.orelse:
                self.statement(inner, guard_deps=deps)
        elif isinstance(stmt, Nop):
            return
        else:
            raise SynthesisError(f"cannot extract operations from {stmt!r}")

    def guard(self, expr):
        if isinstance(expr, (BinOp, UnOp)):
            self._emit_expr(expr)
        elif isinstance(expr, PortRef):
            if expr.port_name not in self.dfg.port_reads:
                self.dfg.port_reads.append(expr.port_name)


def build_state_dfg(state, width=16):
    """Build the data-flow graph of one FSM state."""
    extractor = _Extractor(state.name, width=width)
    for stmt in state.actions:
        extractor.statement(stmt)
    for transition in state.transitions:
        if transition.guard is not None:
            extractor.guard(transition.guard)
        for stmt in transition.actions:
            extractor.statement(stmt)
    return extractor.dfg


def build_fsm_dfgs(fsm, width=16):
    """Build the per-state data-flow graphs of a whole FSM."""
    return {state.name: build_state_dfg(state, width=width) for state in fsm.iter_states()}
