"""High-level synthesis passes.

The hardware synthesis path of the flow: behavioural FSMs are turned into
FSMDs (finite state machine + datapath) through the classic sequence

1. data-flow graph extraction per FSM state (:mod:`repro.cosyn.hls.dfg`),
2. scheduling into control steps — ASAP, ALAP and resource-constrained list
   scheduling (:mod:`repro.cosyn.hls.scheduling`),
3. functional-unit and register allocation/binding
   (:mod:`repro.cosyn.hls.allocation`),
4. FSMD construction and RTL netlist generation
   (:mod:`repro.cosyn.hls.fsmd`, :mod:`repro.cosyn.hls.rtl`),
5. area/timing estimation against the XC4000 device model
   (:mod:`repro.cosyn.hls.estimate`).
"""

from repro.cosyn.hls.dfg import DataFlowGraph, Operation, build_state_dfg, build_fsm_dfgs
from repro.cosyn.hls.scheduling import (
    asap_schedule,
    alap_schedule,
    list_schedule,
    Schedule,
)
from repro.cosyn.hls.allocation import Allocation, allocate
from repro.cosyn.hls.fsmd import Fsmd, build_fsmd
from repro.cosyn.hls.estimate import AreaTimingEstimate, estimate_fsmd
from repro.cosyn.hls.rtl import RtlNetlist, build_netlist, emit_rtl_vhdl

__all__ = [
    "DataFlowGraph",
    "Operation",
    "build_state_dfg",
    "build_fsm_dfgs",
    "asap_schedule",
    "alap_schedule",
    "list_schedule",
    "Schedule",
    "Allocation",
    "allocate",
    "Fsmd",
    "build_fsmd",
    "AreaTimingEstimate",
    "estimate_fsmd",
    "RtlNetlist",
    "build_netlist",
    "emit_rtl_vhdl",
]
