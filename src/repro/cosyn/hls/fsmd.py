"""FSMD construction: merge the behavioural FSM with its schedules.

Each behavioural state expands into ``max(1, schedule.length)`` controller
states (one per control step); transitions leave from the last control step
of their source state, preserving the original FSM's control structure.  The
FSMD is what the RTL generator and the estimator work on, and its state
count is the figure reported in the synthesis tables.
"""

from repro.utils.errors import SynthesisError


class FsmdState:
    """One controller state of the FSMD."""

    def __init__(self, name, source_state, step, operations):
        self.name = name
        self.source_state = source_state
        self.step = step
        self.operations = list(operations)

    def __repr__(self):
        return f"FsmdState({self.name}, ops={len(self.operations)})"


class Fsmd:
    """Finite state machine with datapath for one behavioural FSM."""

    def __init__(self, fsm, allocation):
        self.fsm = fsm
        self.allocation = allocation
        self.states = []
        self.transitions = []

    @property
    def state_count(self):
        return len(self.states)

    def states_of(self, source_state):
        return [state for state in self.states if state.source_state == source_state]

    def controller_bits(self):
        """State-register width of the FSMD controller."""
        count = max(self.state_count, 1)
        bits = 1
        while (1 << bits) < count:
            bits += 1
        return bits

    def summary(self):
        return {
            "fsm": self.fsm.name,
            "behavioural_states": len(self.fsm.states),
            "fsmd_states": self.state_count,
            "transitions": len(self.transitions),
            "functional_units": self.allocation.unit_count(),
            "registers": self.allocation.register_count(),
        }

    def __repr__(self):
        return f"Fsmd({self.fsm.name}, states={self.state_count})"


def build_fsmd(fsm, schedules, allocation):
    """Build the FSMD of *fsm* from its schedules and allocation."""
    fsmd = Fsmd(fsm, allocation)
    last_cstep_state = {}
    for state in fsm.iter_states():
        schedule = schedules.get(state.name)
        if schedule is None:
            raise SynthesisError(f"no schedule for state {state.name!r}")
        steps = max(1, schedule.length)
        for step in range(steps):
            operations = schedule.operations_in_step(step) if schedule.length else []
            name = state.name if steps == 1 else f"{state.name}_c{step}"
            fsmd.states.append(FsmdState(name, state.name, step, operations))
            if step > 0:
                fsmd.transitions.append((f"{state.name}_c{step - 1}" if steps > 1 and step - 1 > 0
                                         else (state.name if steps == 1 else f"{state.name}_c0"),
                                         name, None))
        last_cstep_state[state.name] = (
            state.name if steps == 1 else f"{state.name}_c{steps - 1}"
        )
    for state in fsm.iter_states():
        source = last_cstep_state[state.name]
        for transition in state.transitions:
            target_first = _first_state_name(fsm, schedules, transition.target)
            fsmd.transitions.append((source, target_first, transition))
    return fsmd


def _first_state_name(fsm, schedules, state_name):
    schedule = schedules.get(state_name)
    if schedule is None:
        raise SynthesisError(f"no schedule for state {state_name!r}")
    steps = max(1, schedule.length)
    return state_name if steps == 1 else f"{state_name}_c0"
