"""Functional-unit and register allocation / binding.

Allocation decides how many physical resources the datapath needs; binding
assigns every operation to a concrete functional-unit instance and every FSM
variable to a register.  The algorithms are the standard greedy ones:

* functional units — per class, the maximum number of operations of that
  class active in any control step of any state (states execute one at a
  time, so units are shared across states),
* operation binding — left-edge style: within a control step operations are
  assigned to the lowest-numbered free unit of their class,
* registers — one per FSM variable plus one per multi-step intermediate
  value (an operation whose consumer is scheduled in a later control step).
"""

from repro.utils.errors import SynthesisError


class FunctionalUnit:
    """One allocated datapath resource."""

    def __init__(self, name, fu_class, operators, width=16):
        self.name = name
        self.fu_class = fu_class
        self.operators = sorted(set(operators))
        self.width = width

    def __repr__(self):
        return f"FunctionalUnit({self.name}, {self.fu_class}, ops={self.operators})"


class Allocation:
    """The result of allocation/binding over all states of one FSM."""

    def __init__(self, fsm_name):
        self.fsm_name = fsm_name
        self.functional_units = []
        self.operation_binding = {}
        self.registers = []
        self.intermediate_registers = 0
        self.mux_inputs = 0

    def units_of_class(self, fu_class):
        return [unit for unit in self.functional_units if unit.fu_class == fu_class]

    def unit_count(self):
        return len(self.functional_units)

    def register_count(self):
        return len(self.registers) + self.intermediate_registers

    def summary(self):
        return {
            "fsm": self.fsm_name,
            "functional_units": {
                unit.name: unit.fu_class for unit in self.functional_units
            },
            "registers": self.register_count(),
            "mux_inputs": self.mux_inputs,
        }

    def __repr__(self):
        return (
            f"Allocation({self.fsm_name}, units={self.unit_count()}, "
            f"registers={self.register_count()})"
        )


def allocate(fsm, schedules, width=16):
    """Allocate and bind resources for *fsm* given its per-state *schedules*.

    *schedules* maps state name to :class:`~repro.cosyn.hls.scheduling.Schedule`.
    """
    allocation = Allocation(fsm.name)

    # ----------------------------------------------------- functional units
    needed = {}
    operators_per_class = {}
    for schedule in schedules.values():
        for step in range(schedule.length):
            per_class = {}
            for operation in schedule.operations_in_step(step):
                if operation.fu_class == "move":
                    continue
                per_class[operation.fu_class] = per_class.get(operation.fu_class, 0) + 1
                operators_per_class.setdefault(operation.fu_class, set()).add(operation.op)
            for fu_class, count in per_class.items():
                needed[fu_class] = max(needed.get(fu_class, 0), count)
    for fu_class in sorted(needed):
        for index in range(needed[fu_class]):
            allocation.functional_units.append(
                FunctionalUnit(
                    f"{fu_class}{index}", fu_class,
                    operators_per_class.get(fu_class, ()), width=width,
                )
            )

    # ---------------------------------------------------- operation binding
    for state_name, schedule in schedules.items():
        for step in range(schedule.length):
            used_per_class = {}
            for operation in schedule.operations_in_step(step):
                if operation.fu_class == "move":
                    allocation.operation_binding[operation.op_id] = "interconnect"
                    continue
                index = used_per_class.get(operation.fu_class, 0)
                units = allocation.units_of_class(operation.fu_class)
                if index >= len(units):
                    raise SynthesisError(
                        f"binding overflow for class {operation.fu_class!r} in state "
                        f"{state_name!r} step {step}"
                    )
                allocation.operation_binding[operation.op_id] = units[index].name
                used_per_class[operation.fu_class] = index + 1

    # -------------------------------------------------------------- registers
    allocation.registers = sorted(fsm.variables)
    intermediates = 0
    for schedule in schedules.values():
        for producer, consumer in schedule.dfg.edges:
            if schedule.assignment[consumer] > schedule.assignment[producer]:
                intermediates += 1
    allocation.intermediate_registers = intermediates

    # ------------------------------------------------------------------ muxes
    # Every functional unit fed by more than one distinct source needs input
    # multiplexers; approximate the mux complexity by the number of bound
    # operations in excess of the unit count.
    bound_real_ops = [
        op_id for op_id, unit in allocation.operation_binding.items()
        if unit != "interconnect"
    ]
    allocation.mux_inputs = max(0, len(bound_real_ops) - allocation.unit_count())
    return allocation
