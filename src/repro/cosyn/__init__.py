"""Co-synthesis flow.

Maps the same system model that was co-simulated onto a concrete target
architecture (paper Figure 1, right branch):

* **software synthesis** (:mod:`repro.cosyn.sw_synthesis`) — the software
  modules and the SW synthesis views of the services they call are expanded
  into C programs for the target processor, with the platform's physical
  address map and a timing/code-size estimate,
* **hardware synthesis** (:mod:`repro.cosyn.hw_synthesis`, backed by the
  high-level synthesis passes of :mod:`repro.cosyn.hls`) — the hardware
  module processes are scheduled, allocated and bound into FSMDs, RTL VHDL
  is emitted and the design is estimated against the target FPGA,
* **communication binding** — communication units are *not* synthesized (they
  are library components); their ports are bound to the platform's physical
  resources (ISA addresses, IPC queues ...),
* **coherence checking** (:mod:`repro.cosyn.coherence`) — the synthesized
  system, executed with back-annotated platform timing, is compared with the
  functional co-simulation to show both flows agree.
"""

from repro.cosyn.target import TargetArchitecture
from repro.cosyn.sw_synthesis import (
    SoftwareSynthesisResult,
    estimate_software_metrics,
    synthesize_software,
)
from repro.cosyn.hw_synthesis import HardwareSynthesisResult, synthesize_hardware
from repro.cosyn.flow import CosynthesisFlow, CosynthesisResult
from repro.cosyn.coherence import CoherenceReport, check_coherence

__all__ = [
    "TargetArchitecture",
    "SoftwareSynthesisResult",
    "estimate_software_metrics",
    "synthesize_software",
    "HardwareSynthesisResult",
    "synthesize_hardware",
    "CosynthesisFlow",
    "CosynthesisResult",
    "CoherenceReport",
    "check_coherence",
]
