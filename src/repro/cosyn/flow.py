"""The co-synthesis flow driver.

``CosynthesisFlow(model, platform).run()`` performs, in order:

1. model validation (including the presence of the SW synthesis views for
   the chosen platform when a view library is supplied),
2. software synthesis of every software module,
3. hardware synthesis of every hardware module (when the platform has
   programmable hardware),
4. communication binding — the ports of the units reachable from software
   are mapped to physical addresses / queue identifiers,
5. constraint checking (device fit, clock achievable, bus rate sustainable),

and returns a :class:`CosynthesisResult` holding every artefact plus a
printable report — the co-synthesis half of the paper's Figure 1.
"""

import json

from repro.core.validation import validate_model
from repro.utils.canonical import content_digest
from repro.cosyn.sw_synthesis import synthesize_software
from repro.cosyn.hw_synthesis import synthesize_hardware
from repro.cosyn.target import TargetArchitecture
from repro.platforms.base import Platform
from repro.utils.errors import SynthesisError
from repro.utils.text import format_table

#: A hardware module's clock must track the platform bus within this many
#: bus cycles.
BUS_TRACKING_FACTOR = 4


def check_device_fit(total_clbs, device):
    """Problem string when *total_clbs* overflows *device*, else None.

    Shared with the :mod:`repro.dse` static prune so both verdicts agree.
    """
    if total_clbs > device.clb_count:
        return (f"hardware does not fit: {total_clbs} CLBs needed, "
                f"{device.clb_count} available on {device.name}")
    return None


def check_bus_tracking(achievable_clock_ns, bus):
    """Problem string when a clock cannot track *bus*, else None."""
    if achievable_clock_ns > BUS_TRACKING_FACTOR * bus.cycle_ns:
        return (f"achievable clock {achievable_clock_ns} ns "
                f"is too slow to track the {bus.name} bus "
                f"({bus.cycle_ns:.0f} ns cycle)")
    return None


def check_address_window(address_count, bus):
    """Problem string when *address_count* overflows the bus window, else None."""
    window = getattr(bus, "window", None)
    if window is not None and address_count > window:
        return (f"address map needs {address_count} locations, "
                f"bus window offers {window}")
    return None


class CosynthesisResult:
    """All artefacts produced by one co-synthesis run."""

    def __init__(self, target):
        self.target = target
        self.software = {}
        self.hardware = {}
        self.address_map = {}
        self.problems = []

    # ------------------------------------------------------------------ query

    @property
    def ok(self):
        return not self.problems

    def software_result(self, module_name):
        try:
            return self.software[module_name]
        except KeyError:
            raise SynthesisError(f"no software synthesis result for {module_name!r}") from None

    def hardware_result(self, module_name):
        try:
            return self.hardware[module_name]
        except KeyError:
            raise SynthesisError(f"no hardware synthesis result for {module_name!r}") from None

    def system_clock_ns(self):
        """Clock period the synthesized hardware actually achieves."""
        clocks = [result.clock_ns for result in self.hardware.values()]
        return max(clocks) if clocks else self.target.hw_clock_ns()

    def software_activation_ns(self):
        """Worst per-activation software time across all software modules."""
        times = [result.worst_activation_ns for result in self.software.values()]
        return max(times) if times else 0.0

    def total_clbs(self):
        return sum(result.estimate.clbs_total for result in self.hardware.values())

    def as_dict(self, include_text=False):
        """JSON-serializable summary of the run (mirrors
        :meth:`AreaTimingEstimate.as_dict`); *include_text* adds the emitted
        C and VHDL sources.  Used by DSE reports and CI artifacts."""
        return {
            "system": self.target.model.name,
            "platform": self.target.platform.name,
            "ok": self.ok,
            "problems": list(self.problems),
            "system_clock_ns": self.system_clock_ns(),
            "worst_software_activation_ns": round(self.software_activation_ns(), 1),
            "total_clbs": self.total_clbs(),
            "address_map": dict(self.address_map),
            "software": {
                name: result.as_dict(include_text=include_text)
                for name, result in sorted(self.software.items())
            },
            "hardware": {
                name: result.as_dict(include_text=include_text)
                for name, result in sorted(self.hardware.items())
            },
        }

    def to_json(self, include_text=False, indent=2):
        """Deterministic JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(include_text=include_text),
                          indent=indent, sort_keys=True)

    def digest(self, include_text=True):
        """sha256 content digest of :meth:`as_dict`.

        Used by the sweep service to fingerprint synthesis artefacts:
        equal runs digest equally, so a cached artefact can stand in for a
        re-synthesis byte-for-byte (*include_text* defaults to True so the
        emitted C/VHDL sources are part of the identity).
        """
        return content_digest(self.as_dict(include_text=include_text))

    def communication_binding_table(self):
        rows = [(port, hex(address) if isinstance(address, int) else address)
                for port, address in sorted(self.address_map.items())]
        return format_table(["communication port", "physical address"], rows)

    def report(self):
        lines = [
            f"co-synthesis of {self.target.model.name} onto {self.target.platform.name}",
            "",
            "software modules:",
        ]
        for result in self.software.values():
            lines.append(result.report())
            lines.append("")
        lines.append("hardware modules:")
        for result in self.hardware.values():
            lines.append(result.report())
            lines.append("")
        lines.append("communication binding:")
        lines.append(self.communication_binding_table())
        lines.append("")
        lines.append(f"system clock: {self.system_clock_ns()} ns")
        lines.append(
            f"worst software activation: {self.software_activation_ns():.1f} ns"
        )
        if self.problems:
            lines.append("PROBLEMS:")
            lines.extend(f"  - {problem}" for problem in self.problems)
        else:
            lines.append("all co-synthesis constraints satisfied")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"CosynthesisResult({self.target.model.name}@{self.target.platform.name}, "
            f"ok={self.ok})"
        )


class CosynthesisFlow:
    """Drives co-synthesis of a system model onto a platform."""

    def __init__(self, model, platform, library=None, address_base=None,
                 hw_resources=None, validate=True):
        if not isinstance(platform, Platform):
            raise SynthesisError("platform must be a Platform instance")
        self.model = model
        self.platform = platform
        self.library = library
        self.hw_resources = hw_resources
        self.target = TargetArchitecture(model, platform, address_base=address_base)
        if validate:
            validate_model(model, library=library,
                           platforms=[platform.name] if library is not None else ())

    def run(self):
        """Execute the flow and return a :class:`CosynthesisResult`."""
        result = CosynthesisResult(self.target)
        for module in self.target.software_modules():
            result.software[module.name] = synthesize_software(self.target, module)
        if self.platform.has_hardware:
            for module in self.target.hardware_modules():
                result.hardware[module.name] = synthesize_hardware(
                    self.target, module, resources=self.hw_resources
                )
        result.address_map = self.target.address_map()
        result.problems = self._check_constraints(result)
        return result

    # ------------------------------------------------------------ constraints

    def _check_constraints(self, result):
        problems = []
        device = self.platform.device
        if device is not None and result.hardware:
            problem = check_device_fit(result.total_clbs(), device)
            if problem:
                problems.append(problem)
        for module_name, hw_result in result.hardware.items():
            problem = check_bus_tracking(hw_result.achievable_clock_ns,
                                         self.platform.bus)
            if problem:
                problems.append(f"{module_name}: {problem}")
        problem = check_address_window(len(result.address_map),
                                       self.platform.bus)
        if problem:
            problems.append(problem)
        return problems
