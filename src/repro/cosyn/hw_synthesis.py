"""Hardware synthesis.

Each process of a hardware module goes through the high-level synthesis
pipeline (DFG → schedule → allocate → FSMD → RTL → estimate); the module's
estimates are merged and checked against the target FPGA.  The behavioural
VHDL (entity + architecture + HW views of the services the module calls) is
emitted alongside the RTL so the result matches what the paper hands to its
synthesis tools.
"""

from repro.cosyn.hls.allocation import allocate
from repro.cosyn.hls.dfg import build_fsm_dfgs
from repro.cosyn.hls.estimate import estimate_fsmd
from repro.cosyn.hls.fsmd import build_fsmd
from repro.cosyn.hls.rtl import build_netlist, emit_rtl_vhdl
from repro.cosyn.hls.scheduling import DEFAULT_RESOURCES, list_schedule
from repro.hdl.emitter import emit_module
from repro.utils.errors import SynthesisError
from repro.utils.text import format_table


def achievable_clock_ns(critical_path_ns):
    """Smallest integer clock period (ns, ≥ 1) a critical path supports.

    Shared by :class:`HardwareSynthesisResult` and the :mod:`repro.dse`
    cost model so both sides of the flow agree on bus-tracking feasibility.
    """
    return max(1, int(round(critical_path_ns + 0.5)))


class ProcessSynthesis:
    """Synthesis artefacts of one hardware process."""

    def __init__(self, fsm, schedules, allocation, fsmd, netlist, rtl_text, estimate):
        self.fsm = fsm
        self.schedules = schedules
        self.allocation = allocation
        self.fsmd = fsmd
        self.netlist = netlist
        self.rtl_text = rtl_text
        self.estimate = estimate

    def __repr__(self):
        return f"ProcessSynthesis({self.fsm.name}, {self.estimate.clbs_total} CLBs)"


class HardwareSynthesisResult:
    """Everything hardware synthesis produced for one module."""

    def __init__(self, module, platform_name, device, processes, behavioural_vhdl,
                 estimate, clock_ns):
        self.module = module
        self.platform_name = platform_name
        self.device = device
        self.processes = dict(processes)
        self.behavioural_vhdl = behavioural_vhdl
        self.estimate = estimate
        self.clock_ns = clock_ns

    @property
    def fits_device(self):
        return self.device is not None and self.estimate.fits(self.device)

    @property
    def max_frequency_hz(self):
        return self.estimate.max_frequency_hz

    @property
    def achievable_clock_ns(self):
        """Smallest clock period (ns, integer) the synthesized module supports."""
        return achievable_clock_ns(self.estimate.critical_path_ns)

    def utilisation(self):
        if self.device is None:
            return None
        return self.estimate.clbs_total / self.device.clb_count

    def as_dict(self, include_text=False):
        """JSON-serializable summary (set *include_text* for the VHDL)."""
        data = {
            "module": self.module.name,
            "platform": self.platform_name,
            "device": self.device.name if self.device else None,
            "clock_ns": self.clock_ns,
            "achievable_clock_ns": self.achievable_clock_ns,
            "fits_device": self.fits_device,
            "estimate": self.estimate.as_dict(),
            "processes": {
                name: process.estimate.as_dict()
                for name, process in sorted(self.processes.items())
            },
        }
        if include_text:
            data["behavioural_vhdl"] = self.behavioural_vhdl
            data["rtl_vhdl"] = {
                name: process.rtl_text
                for name, process in sorted(self.processes.items())
            }
        return data

    def report(self):
        rows = []
        for name, process in sorted(self.processes.items()):
            data = process.estimate.as_dict()
            rows.append((name, process.fsmd.state_count, data["clbs_total"],
                         data["critical_path_ns"]))
        table = format_table(
            ["process", "FSMD states", "CLBs", "critical path (ns)"], rows
        )
        lines = [
            f"hardware synthesis of {self.module.name} for {self.platform_name}",
            table,
            f"total: {self.estimate.clbs_total} CLBs, "
            f"critical path {self.estimate.critical_path_ns:.1f} ns, "
            f"device {self.device.name if self.device else 'n/a'} "
            f"({'fits' if self.fits_device else 'DOES NOT FIT'})",
        ]
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"HardwareSynthesisResult({self.module.name}@{self.platform_name}, "
            f"{self.estimate.clbs_total} CLBs, fits={self.fits_device})"
        )


def build_process_fsmd(fsm, resources=None, width=16):
    """The HLS front half: DFG → verified schedule → allocation → FSMD.

    Shared by :func:`synthesize_process` (which continues into netlist/RTL
    emission) and the :mod:`repro.dse` cost model (which stops here and
    estimates).  Returns ``(fsmd, schedules, allocation)``.
    """
    resources = dict(DEFAULT_RESOURCES if resources is None else resources)
    dfgs = build_fsm_dfgs(fsm, width=width)
    schedules = {name: list_schedule(dfg, resources) for name, dfg in dfgs.items()}
    for name, schedule in schedules.items():
        problems = schedule.verify()
        if problems:
            raise SynthesisError(
                f"schedule of state {name!r} of {fsm.name!r} is invalid: {problems}"
            )
    allocation = allocate(fsm, schedules, width=width)
    return build_fsmd(fsm, schedules, allocation), schedules, allocation


def synthesize_process(fsm, resources=None, width=16):
    """Run the HLS pipeline for one behavioural FSM."""
    fsmd, schedules, allocation = build_process_fsmd(fsm, resources=resources,
                                                     width=width)
    netlist = build_netlist(fsmd, width=width)
    rtl_text = emit_rtl_vhdl(fsmd, netlist, width=width)
    estimate = estimate_fsmd(fsmd, width=width)
    return ProcessSynthesis(fsm, schedules, allocation, fsmd, netlist, rtl_text, estimate)


def synthesize_hardware(target, module, resources=None, width=16):
    """Run hardware synthesis for one module of a target architecture."""
    if module not in target.hardware_modules():
        raise SynthesisError(
            f"module {module.name!r} is not a hardware module of this target"
        )
    platform = target.platform
    if platform.device is None:
        raise SynthesisError(
            f"platform {platform.name!r} offers no FPGA device for hardware synthesis"
        )
    processes = {}
    estimate = None
    for fsm in module.behaviours():
        process = synthesize_process(fsm, resources=resources, width=width)
        processes[fsm.name] = process
        estimate = process.estimate if estimate is None else estimate.merge(process.estimate)
    estimate.name = module.name

    services = []
    for service_name in module.services_used():
        unit = target.model.unit_for(module.name, service_name)
        services.append(unit.service(service_name))
    behavioural_vhdl = emit_module(module, services)

    clock_ns = max(target.hw_clock_ns(), achievable_clock_ns(estimate.critical_path_ns))
    return HardwareSynthesisResult(
        module, platform.name, platform.device, processes, behavioural_vhdl,
        estimate, clock_ns,
    )
