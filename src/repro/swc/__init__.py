"""C back end: software simulation and software synthesis views.

The package turns IR FSMs into C text shaped exactly like the paper's
Figure 3 (service views) and Figure 6b (software module): one function per
FSM, a ``switch`` over a state variable, ``DONE`` returned on completion.

Which *port access syntax* is substituted for port reads/writes decides the
view kind:

* :class:`~repro.swc.syntax.CliPortSyntax` — ``cliGetPortValue``/``cliOutput``
  → SW **simulation** view,
* platform syntaxes supplied by :mod:`repro.platforms` (e.g.
  ``inport``/``outport`` with a physical address map) → SW **synthesis**
  views.
"""

from repro.swc.syntax import (
    PortAccessSyntax,
    CliPortSyntax,
    IoPortSyntax,
    IpcSyntax,
    MicrocodeSyntax,
)
from repro.swc.emitter import (
    emit_expr,
    emit_stmt,
    emit_service_view,
    emit_module_function,
    emit_program,
)

__all__ = [
    "PortAccessSyntax",
    "CliPortSyntax",
    "IoPortSyntax",
    "IpcSyntax",
    "MicrocodeSyntax",
    "emit_expr",
    "emit_stmt",
    "emit_service_view",
    "emit_module_function",
    "emit_program",
]
