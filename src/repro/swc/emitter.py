"""C code generation from IR FSMs.

The emitted shape follows the paper's listings:

* a service becomes ``int NAME(params..., result*)`` returning ``DONE``
  (Figure 3a/3b),
* a software module becomes ``int NAME(void)`` executing one transition per
  call (Figure 6b),
* :func:`emit_program` assembles a complete translation unit: prologue of
  the chosen port-access syntax, state enums, service functions, module
  function and a simple ``main`` activation loop.
"""

from repro.ir.dtypes import EnumType
from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.swc.syntax import CliPortSyntax, PortAccessSyntax
from repro.utils.errors import SynthesisError

_C_BIN_OPS = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "and": "&&", "or": "||", "xor": "!=",
}


def emit_expr(expr, syntax, enum_prefix=""):
    """Render an IR expression as C source text."""
    if isinstance(expr, Const):
        if isinstance(expr.value, str):
            return f"{enum_prefix}{expr.value}" if enum_prefix else expr.value
        if isinstance(expr.value, bool):
            return "1" if expr.value else "0"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, PortRef):
        return syntax.read_expr(expr.port_name)
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            left = emit_expr(expr.left, syntax, enum_prefix)
            right = emit_expr(expr.right, syntax, enum_prefix)
            cmp_op = "<" if expr.op == "min" else ">"
            return f"(({left}) {cmp_op} ({right}) ? ({left}) : ({right}))"
        left = emit_expr(expr.left, syntax, enum_prefix)
        right = emit_expr(expr.right, syntax, enum_prefix)
        return f"({left} {_C_BIN_OPS[expr.op]} {right})"
    if isinstance(expr, UnOp):
        operand = emit_expr(expr.operand, syntax, enum_prefix)
        if expr.op == "not":
            return f"(!{operand})"
        if expr.op == "neg":
            return f"(-{operand})"
        if expr.op == "abs":
            return f"(({operand}) < 0 ? -({operand}) : ({operand}))"
    raise SynthesisError(f"cannot emit C for {expr!r}")


def emit_stmt(stmt, syntax, indent=1, enum_prefix=""):
    """Render an IR statement as (possibly several) C lines."""
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target} = {emit_expr(stmt.expr, syntax, enum_prefix)};"]
    if isinstance(stmt, PortWrite):
        return [pad + syntax.write_stmt(stmt.port_name, emit_expr(stmt.expr, syntax, enum_prefix))]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({emit_expr(stmt.cond, syntax, enum_prefix)}) {{"]
        for inner in stmt.then:
            lines.extend(emit_stmt(inner, syntax, indent + 1, enum_prefix))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                lines.extend(emit_stmt(inner, syntax, indent + 1, enum_prefix))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Nop):
        return [f"{pad};"]
    raise SynthesisError(f"cannot emit C for {stmt!r}")


def _c_type(dtype):
    if isinstance(dtype, EnumType):
        return dtype.c_name()
    return dtype.c_name()


def _state_enum(fsm, prefix):
    names = ", ".join(f"{prefix}{name}" for name in fsm.state_order)
    return f"typedef enum {{ {names} }} {prefix}STATETABLE;"


def emit_service_view(service, syntax=None, view_label=None):
    """Emit the C view of a *service* using the given port-access *syntax*.

    The default syntax is the simulator CLI, i.e. the SW simulation view.
    Returns the complete C text of the service function plus its state
    machinery, mirroring Figure 3a/3b of the paper.
    """
    syntax = syntax or CliPortSyntax()
    if not isinstance(syntax, PortAccessSyntax):
        raise SynthesisError("syntax must be a PortAccessSyntax")
    fsm = service.fsm
    prefix = f"{service.name}_"
    lines = []
    label = view_label or syntax.label
    lines.append(f"/* {service.name}: software view -- {label} */")
    lines.extend(syntax.prologue())
    lines.append("")
    lines.append(_state_enum(fsm, prefix))
    lines.append(f"static {prefix}STATETABLE {prefix}NEXTSTATE = {prefix}{fsm.initial};")
    # Static storage for the FSM variables (parameters become arguments).
    param_names = set(service.param_names)
    for decl in fsm.variables.values():
        if decl.name in param_names or decl.name == fsm.result_var:
            continue
        lines.append(f"static {_c_type(decl.dtype)} {prefix}{decl.name} = {_c_init(decl)};")
    lines.append("")
    params = [f"{_c_type(p.dtype)} {p.name}" for p in service.params]
    if service.returns is not None:
        params.append(f"{_c_type(service.returns)} *{service.fsm.result_var}_out")
    signature = ", ".join(params) if params else "void"
    lines.append(f"int {service.name}({signature})")
    lines.append("{")
    lines.append("  int DONE = 0;")
    if service.returns is not None:
        lines.append(f"  {_c_type(service.returns)} {fsm.result_var} = 0;")
    lines.append(f"  switch ({prefix}NEXTSTATE)")
    lines.append("  {")
    for state in fsm.iter_states():
        lines.append(f"    case {prefix}{state.name}:")
        lines.append("    {")
        renames = {
            decl.name: f"{prefix}{decl.name}"
            for decl in fsm.variables.values()
            if decl.name not in param_names and decl.name != fsm.result_var
        }
        for stmt in state.actions:
            lines.extend(
                _rename_lines(emit_stmt(stmt, syntax, indent=3, enum_prefix=prefix), renames)
            )
        for transition in state.transitions:
            if transition.call is not None:
                raise SynthesisError(
                    f"service {service.name!r}: services may not call other services"
                )
            body = [f"      {prefix}NEXTSTATE = {prefix}{transition.target};"]
            for stmt in transition.actions:
                body.extend(
                    _rename_lines(emit_stmt(stmt, syntax, indent=3, enum_prefix=prefix), renames)
                )
            body.append("      break;")
            if transition.guard is not None:
                guard = emit_expr(transition.guard, syntax, enum_prefix=prefix)
                guard = _rename_text(guard, renames)
                lines.append(f"      if ({guard}) {{")
                lines.extend("  " + line for line in body)
                lines.append("      }")
            else:
                lines.extend(body)
        lines.append("      break;")
        lines.append("    }")
    lines.append("    default:")
    lines.append(f"    {{ {prefix}NEXTSTATE = {prefix}{fsm.initial}; break; }}")
    lines.append("  }")
    done_checks = " || ".join(
        f"{prefix}NEXTSTATE == {prefix}{name}" for name in sorted(fsm.done_states)
    )
    lines.append(f"  if ({done_checks}) {{")
    lines.append(f"    {prefix}NEXTSTATE = {prefix}{fsm.initial};")
    lines.append("    DONE = 1;")
    if service.returns is not None:
        lines.append(f"    if ({fsm.result_var}_out) *{fsm.result_var}_out = {fsm.result_var};")
    lines.append("  }")
    lines.append("  return DONE;")
    lines.append("}")
    return "\n".join(lines)


def _c_init(decl):
    if isinstance(decl.dtype, EnumType):
        return str(decl.dtype.index_of(decl.init))
    if isinstance(decl.init, bool):
        return "1" if decl.init else "0"
    return str(decl.init)


def _rename_lines(lines, renames):
    return [_rename_text(line, renames) for line in lines]


def _rename_text(text, renames):
    import re

    for old, new in renames.items():
        text = re.sub(rf"\b{re.escape(old)}\b", new, text)
    return text


def emit_module_function(module, syntax=None):
    """Emit the C function of a software module (Figure 6b shape).

    Service-call transitions become ``if (Service(args)) NextState = ...;``.
    Services returning a value receive ``&VAR`` as their final argument.
    """
    syntax = syntax or CliPortSyntax()
    fsm = module.fsm
    prefix = f"{fsm.name}_"
    lines = [f"/* software module {module.name} (one transition per activation) */"]
    lines.append(_state_enum(fsm, prefix))
    lines.append(f"static {prefix}STATETABLE NextState = {prefix}{fsm.initial};")
    for decl in fsm.variables.values():
        lines.append(f"static {_c_type(decl.dtype)} {decl.name} = {_c_init(decl)};")
    lines.append("")
    lines.append(f"int {fsm.name}(void)")
    lines.append("{")
    lines.append("  int DONE = 1;")
    lines.append("  switch (NextState)")
    lines.append("  {")
    for state in fsm.iter_states():
        lines.append(f"    case {prefix}{state.name}:")
        lines.append("    {")
        for stmt in state.actions:
            lines.extend(emit_stmt(stmt, syntax, indent=3, enum_prefix=prefix))
        for transition in state.transitions:
            move = [f"NextState = {prefix}{transition.target};"]
            for stmt in transition.actions:
                move.extend(
                    line.strip() for line in emit_stmt(stmt, syntax, indent=0, enum_prefix=prefix)
                )
            move_text = " ".join(move)
            if transition.call is not None:
                args = [emit_expr(arg, syntax, enum_prefix=prefix) for arg in transition.call.args]
                if transition.call.store:
                    args.append(f"&{transition.call.store}")
                call_text = f"{transition.call.service}({', '.join(args)})"
                if transition.guard is not None:
                    guard = emit_expr(transition.guard, syntax, enum_prefix=prefix)
                    lines.append(f"      if ({call_text}) {{ if ({guard}) {{ {move_text} }} }}")
                else:
                    lines.append(f"      if ({call_text}) {{ {move_text} }}")
            elif transition.guard is not None:
                guard = emit_expr(transition.guard, syntax, enum_prefix=prefix)
                lines.append(f"      if ({guard}) {{ {move_text} break; }}")
            else:
                lines.append(f"      {move_text}")
        lines.append("      break;")
        lines.append("    }")
    lines.append("    default:")
    lines.append(f"    {{ NextState = {prefix}{fsm.initial}; break; }}")
    lines.append("  }")
    if fsm.done_states:
        done_checks = " || ".join(
            f"NextState == {prefix}{name}" for name in sorted(fsm.done_states)
        )
        lines.append(f"  if ({done_checks}) DONE = 0;")
    lines.append("  return DONE;")
    lines.append("}")
    return "\n".join(lines)


def emit_program(module, services, syntax=None, platform_name=None):
    """Assemble a complete C translation unit for one software module.

    *services* are the Service objects the module calls; each contributes its
    view generated with *syntax*.  A trivial ``main`` activation loop closes
    the file, mirroring how the paper's Distribution program was compiled and
    run on the PC-AT.
    """
    syntax = syntax or CliPortSyntax()
    header = [
        "/*",
        f" * Software module {module.name}",
        f" * View: {syntax.label}",
    ]
    if platform_name:
        header.append(f" * Target platform: {platform_name}")
    header.append(" * Generated by the unified co-simulation / co-synthesis flow.")
    header.append(" */")
    parts = ["\n".join(header)]
    parts.extend(emit_service_view(service, syntax) for service in services)
    parts.append(emit_module_function(module, syntax))
    parts.append(
        "\n".join(
            [
                "int main(void)",
                "{",
                f"  while ({module.fsm.name}())",
                "  {",
                "    /* one FSM transition per activation */",
                "  }",
                "  return 0;",
                "}",
            ]
        )
    )
    return "\n\n".join(parts) + "\n"
