"""Port-access syntaxes: how generated C reads and writes communication ports.

Each syntax corresponds to one column of the paper's Figure 3 discussion:

* ``CliPortSyntax`` — the simulator's C-language interface (SW simulation
  view),
* ``IoPortSyntax`` — memory-mapped or I/O-port access on a processor target
  such as the 386 PC-AT (``inport``/``outport`` with a physical address map),
* ``IpcSyntax`` — communication expanded into operating-system IPC calls,
* ``MicrocodeSyntax`` — communication expanded into calls to micro-code
  routines of a micro-coded controller.

A syntax object also carries a per-access cycle estimate, which the
co-synthesis flow uses for the software-side timing budget.
"""

from repro.utils.errors import SynthesisError


class PortAccessSyntax:
    """Strategy object deciding how port accesses appear in generated C."""

    #: short label used in the generated header comment
    label = "abstract"
    #: estimated processor cycles per port read/write (None = unknown)
    read_cycles = None
    write_cycles = None

    def read_expr(self, port_name):
        """Return the C expression reading *port_name*."""
        raise NotImplementedError

    def write_stmt(self, port_name, value_expr):
        """Return the C statement (without trailing newline) writing *port_name*."""
        raise NotImplementedError

    def prologue(self):
        """Lines emitted once at the top of a generated file (includes, macros)."""
        return []


class CliPortSyntax(PortAccessSyntax):
    """Simulator C-language interface — the SW simulation view of Figure 3b."""

    label = "simulation (VHDL simulator C-language interface)"
    read_cycles = 0
    write_cycles = 0

    def read_expr(self, port_name):
        return f"cliGetPortValue(map({port_name}))"

    def write_stmt(self, port_name, value_expr):
        return f"cliOutput(map({port_name}), {value_expr});"

    def prologue(self):
        return [
            '#include "vss_cli.h"  /* simulator C-language interface */',
        ]


class IoPortSyntax(PortAccessSyntax):
    """I/O-port access on a processor platform — the SW synthesis view of Figure 3a.

    Parameters
    ----------
    address_map:
        Mapping from port name to physical I/O address (integers).
    read_cycles / write_cycles:
        Processor + bus cycles consumed per access (used for timing budgets).
    """

    label = "synthesis (processor I/O ports)"

    def __init__(self, address_map, read_cycles=12, write_cycles=12):
        self.address_map = dict(address_map)
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles

    def _address(self, port_name):
        try:
            return self.address_map[port_name]
        except KeyError:
            raise SynthesisError(
                f"no physical address assigned to port {port_name!r}"
            ) from None

    def read_expr(self, port_name):
        return f"inport(0x{self._address(port_name):X})"

    def write_stmt(self, port_name, value_expr):
        return f"outport(0x{self._address(port_name):X}, {value_expr});"

    def prologue(self):
        lines = ['#include <dos.h>  /* inport / outport */', "/* physical address map */"]
        for port_name in sorted(self.address_map):
            lines.append(
                f"#define map_{port_name} 0x{self.address_map[port_name]:X}"
            )
        return lines


class IpcSyntax(PortAccessSyntax):
    """Communication through operating-system IPC (UNIX message queues)."""

    label = "synthesis (UNIX inter-process communication)"

    def __init__(self, queue_ids=None, read_cycles=400, write_cycles=400):
        self.queue_ids = dict(queue_ids or {})
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles

    def _queue(self, port_name):
        return self.queue_ids.get(port_name, f"QUEUE_{port_name}")

    def read_expr(self, port_name):
        return f"ipc_receive({self._queue(port_name)})"

    def write_stmt(self, port_name, value_expr):
        return f"ipc_send({self._queue(port_name)}, {value_expr});"

    def prologue(self):
        return [
            "#include <sys/ipc.h>",
            "#include <sys/msg.h>",
            '#include "ipc_channel.h"  /* ipc_send / ipc_receive wrappers */',
        ]


class MicrocodeSyntax(PortAccessSyntax):
    """Communication through micro-code routines of a micro-coded controller."""

    label = "synthesis (micro-coded controller routines)"

    def __init__(self, routine_prefix="ucode", read_cycles=4, write_cycles=4):
        self.routine_prefix = routine_prefix
        self.read_cycles = read_cycles
        self.write_cycles = write_cycles

    def read_expr(self, port_name):
        return f"{self.routine_prefix}_read({port_name}_REG)"

    def write_stmt(self, port_name, value_expr):
        return f"{self.routine_prefix}_write({port_name}_REG, {value_expr});"

    def prologue(self):
        return ['#include "ucode_runtime.h"  /* micro-code routine stubs */']
