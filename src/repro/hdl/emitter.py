"""VHDL text generation from the behavioural IR.

The generated text follows the shape of the paper's listings: a service
becomes a VHDL procedure whose body is a ``case`` over a state variable
(Figure 3c); a hardware module becomes an entity with one clocked process per
behaviour (Figure 7).  Ports carrying :class:`~repro.ir.dtypes.BitType`
values are rendered as ``std_logic`` with ``'0'``/``'1'`` literals; other
ports use VHDL integers.
"""

from repro.ir.dtypes import BitType, EnumType
from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.utils.errors import SynthesisError

_VHDL_BIN_OPS = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "mod",
    "eq": "=", "ne": "/=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "and": "and", "or": "or", "xor": "xor",
}


class EmitContext:
    """Carries naming information needed while emitting VHDL.

    Parameters
    ----------
    bit_ports:
        Names of ports/signals holding single bits — their literals are
        quoted (``'1'``) instead of plain integers.
    variable_names:
        Names treated as VHDL variables (assigned with ``:=``); everything
        else written through ``PortWrite`` uses a signal assignment ``<=``.
    enum_values:
        Mapping from enum literal to the emitted VHDL identifier.
    """

    def __init__(self, bit_ports=(), variable_names=(), enum_values=None):
        self.bit_ports = set(bit_ports)
        self.variable_names = set(variable_names)
        self.enum_values = dict(enum_values or {})

    def literal(self, value, bit_context=False):
        if isinstance(value, str):
            return self.enum_values.get(value, value)
        if isinstance(value, bool):
            value = int(value)
        if bit_context and value in (0, 1):
            return f"'{value}'"
        return str(value)


def _is_bit_ref(expr, context):
    return isinstance(expr, PortRef) and expr.port_name in context.bit_ports


def emit_expr(expr, context=None):
    """Render an IR expression as VHDL source text."""
    context = context or EmitContext()
    if isinstance(expr, Const):
        return context.literal(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, PortRef):
        return expr.port_name
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            left = emit_expr(expr.left, context)
            right = emit_expr(expr.right, context)
            return f"{expr.op}imum({left}, {right})"
        bit_context = _is_bit_ref(expr.left, context) or _is_bit_ref(expr.right, context)
        left = _emit_operand(expr.left, context, bit_context)
        right = _emit_operand(expr.right, context, bit_context)
        return f"({left} {_VHDL_BIN_OPS[expr.op]} {right})"
    if isinstance(expr, UnOp):
        operand = emit_expr(expr.operand, context)
        if expr.op == "not":
            return f"(not {operand})"
        if expr.op == "neg":
            return f"(-{operand})"
        if expr.op == "abs":
            return f"(abs {operand})"
    raise SynthesisError(f"cannot emit VHDL for {expr!r}")


def _emit_operand(expr, context, bit_context):
    if isinstance(expr, Const):
        return context.literal(expr.value, bit_context=bit_context)
    return emit_expr(expr, context)


def emit_stmt(stmt, context=None, indent=1):
    """Render an IR statement as VHDL lines."""
    context = context or EmitContext()
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target} := {emit_expr(stmt.expr, context)};"]
    if isinstance(stmt, PortWrite):
        value = emit_expr(stmt.expr, context)
        if isinstance(stmt.expr, Const) and stmt.port_name in context.bit_ports:
            value = context.literal(stmt.expr.value, bit_context=True)
        assign = ":=" if stmt.port_name in context.variable_names else "<="
        return [f"{pad}{stmt.port_name} {assign} {value};"]
    if isinstance(stmt, If):
        cond = emit_expr(stmt.cond, context)
        lines = [f"{pad}if {cond} then"]
        for inner in stmt.then:
            lines.extend(emit_stmt(inner, context, indent + 1))
        if stmt.orelse:
            lines.append(f"{pad}else")
            for inner in stmt.orelse:
                lines.extend(emit_stmt(inner, context, indent + 1))
        lines.append(f"{pad}end if;")
        return lines
    if isinstance(stmt, Nop):
        return [f"{pad}null;"]
    raise SynthesisError(f"cannot emit VHDL for {stmt!r}")


def _vhdl_type(dtype):
    return dtype.vhdl_name()


def _guard_expr(guard, context):
    text = emit_expr(guard, context)
    # Comparisons against bare 0/1 on bit ports read better with quotes; the
    # generic emitter already handles the common (port = const) case.
    return text


def emit_service_procedure(service, context=None):
    """Emit the hardware (VHDL) view of a service — the Figure 3c shape."""
    fsm = service.fsm
    bit_ports = set(context.bit_ports) if context else set()
    variable_names = {f"{service.name}_NEXT_STATE"}
    ctx = EmitContext(bit_ports=bit_ports, variable_names=variable_names)
    prefix = f"{service.name}_"
    lines = [f"-- {service.name}: hardware view (used for co-simulation and synthesis)"]
    params = []
    for param in service.params:
        params.append(f"{param.name} : in {_vhdl_type(param.dtype)}")
    if service.returns is not None:
        params.append(f"{fsm.result_var} : out {_vhdl_type(service.returns)}")
    params.append("DONE : out std_logic")
    lines.append(f"procedure {service.name}({'; '.join(params)}) is")
    lines.append("begin")
    lines.append(f"  case {prefix}NEXT_STATE is")
    for state in fsm.iter_states():
        lines.append(f"    when {prefix}{state.name} =>")
        for stmt in state.actions:
            lines.extend(emit_stmt(stmt, ctx, indent=3))
        for transition in state.transitions:
            if transition.call is not None:
                raise SynthesisError(
                    f"service {service.name!r}: services may not call other services"
                )
        lines.extend(
            _emit_transition_chain(
                state.transitions, ctx, indent=3,
                move=lambda t: [f"{prefix}NEXT_STATE := {prefix}{t.target};"],
            )
        )
    lines.append(f"    when others => {prefix}NEXT_STATE := {prefix}{fsm.initial};")
    lines.append("  end case;")
    done_test = " or ".join(
        f"{prefix}NEXT_STATE = {prefix}{name}" for name in sorted(fsm.done_states)
    )
    lines.append(f"  if {done_test} then")
    lines.append(f"    {prefix}NEXT_STATE := {prefix}{fsm.initial};")
    lines.append("    DONE := '1';")
    lines.append("  else")
    lines.append("    DONE := '0';")
    lines.append("  end if;")
    lines.append(f"end procedure {service.name};")
    return "\n".join(lines)


def _emit_transition_chain(transitions, ctx, indent, move):
    """Emit a state's transitions as an ``if / elsif / else`` chain.

    *move* maps a transition to the lines performing the state change; the
    chain preserves the IR's first-match-wins semantics.  Service-call
    transitions are handled by the caller (hardware processes) — this helper
    only deals with plain guarded transitions.
    """
    pad = "  " * indent
    lines = []
    guarded = [t for t in transitions if t.guard is not None]
    unconditional = [t for t in transitions if t.guard is None]
    # Only the first unconditional transition can ever fire.
    fallback = unconditional[0] if unconditional else None

    def body(transition, extra_indent):
        inner = []
        inner.extend("  " * extra_indent + pad + line for line in move(transition))
        for stmt in transition.actions:
            inner.extend(emit_stmt(stmt, ctx, indent=indent + extra_indent))
        return inner

    if not guarded:
        if fallback is not None:
            lines.extend(body(fallback, 0))
        return lines
    for index, transition in enumerate(guarded):
        keyword = "if" if index == 0 else "elsif"
        lines.append(f"{pad}{keyword} {_guard_expr(transition.guard, ctx)} then")
        lines.extend(body(transition, 1))
    if fallback is not None:
        lines.append(f"{pad}else")
        lines.extend(body(fallback, 1))
    lines.append(f"{pad}end if;")
    return lines


def emit_process(fsm, context=None, clock="clk", reset="rst"):
    """Emit one clocked VHDL process implementing an FSM (Figure 7 shape).

    Service calls are rendered as procedure calls guarded by their DONE flag,
    using the HW views emitted by :func:`emit_service_procedure`.
    """
    ctx = context or EmitContext()
    prefix = f"{fsm.name}_"
    lines = [f"-- {fsm.name} unit"]
    lines.append(f"{fsm.name}_proc : process({clock}, {reset})")
    state_names = ", ".join(prefix + name for name in fsm.state_order)
    lines.append(f"  type {prefix}STATES is ({state_names});")
    lines.append(f"  variable {prefix}STATE : {prefix}STATES := {prefix}{fsm.initial};")
    for decl in fsm.variables.values():
        init = ctx.literal(decl.init, bit_context=isinstance(decl.dtype, BitType))
        lines.append(
            f"  variable {decl.name} : {_vhdl_type(decl.dtype)} := {init};"
        )
    lines.append("  variable CALL_DONE : std_logic;")
    lines.append("begin")
    lines.append(f"  if {reset} = '1' then")
    lines.append(f"    {prefix}STATE := {prefix}{fsm.initial};")
    lines.append(f"  elsif rising_edge({clock}) then")
    lines.append(f"    case {prefix}STATE is")
    for state in fsm.iter_states():
        lines.append(f"      when {prefix}{state.name} =>")
        body_emitted = False
        for stmt in state.actions:
            lines.extend(emit_stmt(stmt, ctx, indent=4))
            body_emitted = True
        call_transitions = [t for t in state.transitions if t.call is not None]
        plain_transitions = [t for t in state.transitions if t.call is None]
        for transition in call_transitions:
            move = [f"          {prefix}STATE := {prefix}{transition.target};"]
            for stmt in transition.actions:
                move.extend(emit_stmt(stmt, ctx, indent=5))
            args = [emit_expr(arg, ctx) for arg in transition.call.args]
            if transition.call.store:
                args.append(transition.call.store)
            args.append("CALL_DONE")
            lines.append(f"        {transition.call.service}({', '.join(args)});")
            guard = "CALL_DONE = '1'"
            if transition.guard is not None:
                guard += f" and {_guard_expr(transition.guard, ctx)}"
            lines.append(f"        if {guard} then")
            lines.extend(move)
            lines.append("        end if;")
            body_emitted = True
        if plain_transitions:
            lines.extend(
                _emit_transition_chain(
                    plain_transitions, ctx, indent=4,
                    move=lambda t: [f"{prefix}STATE := {prefix}{t.target};"],
                )
            )
            body_emitted = True
        if not body_emitted:
            lines.append("        null;")
    lines.append("    end case;")
    lines.append("  end if;")
    lines.append("end process;")
    return "\n".join(lines)


def emit_entity(name, ports, bit_ports=()):
    """Emit a VHDL entity declaration for the given ports."""
    lines = ["library ieee;", "use ieee.std_logic_1164.all;", ""]
    lines.append(f"entity {name} is")
    if ports:
        lines.append("  port (")
        declarations = []
        for port in ports:
            direction = port.direction.value
            vhdl_type = (
                "std_logic" if port.name in bit_ports or isinstance(port.dtype, BitType)
                else _vhdl_type(port.dtype)
            )
            declarations.append(f"    {port.name} : {direction} {vhdl_type}")
        lines.append(";\n".join(declarations))
        lines.append("  );")
    lines.append(f"end entity {name};")
    return "\n".join(lines)


def emit_architecture(module, services=(), context=None):
    """Emit a behavioural architecture for a hardware module.

    *services* are the Service objects whose HW views must be declared
    (procedures) before the processes that call them.
    """
    ctx = context or EmitContext(
        bit_ports={name for name, port in module.ports.items()
                   if isinstance(port.dtype, BitType)}
    )
    lines = [f"architecture behaviour of {module.name} is"]
    for name, port in module.internal_signals.items():
        vhdl_type = "std_logic" if isinstance(port.dtype, BitType) else _vhdl_type(port.dtype)
        lines.append(f"  signal {name} : {vhdl_type};")
    for service in services:
        from repro.utils.text import indent_block
        lines.append(indent_block(emit_service_procedure(service, ctx), 1))
    lines.append("begin")
    for fsm in module.behaviours():
        from repro.utils.text import indent_block
        lines.append(indent_block(emit_process(fsm, ctx), 1))
        lines.append("")
    lines.append(f"end architecture behaviour;")
    return "\n".join(lines)


def emit_module(module, services=(), bit_ports=()):
    """Emit the complete VHDL description (entity + architecture) of a module."""
    all_bits = set(bit_ports) | {
        name for name, port in module.ports.items() if isinstance(port.dtype, BitType)
    }
    context = EmitContext(bit_ports=all_bits)
    entity = emit_entity(module.name, list(module.ports.values()), all_bits)
    architecture = emit_architecture(module, services, context)
    return entity + "\n\n" + architecture + "\n"
