"""VHDL back end: hardware views and synthesizable RTL text.

The hardware view of a service (Figure 3c) and the processes of a hardware
module (Figure 7) are generated from the same IR the software views come
from; the RTL emitter of :mod:`repro.cosyn` reuses the expression/statement
printers defined here.
"""

from repro.hdl.emitter import (
    emit_expr,
    emit_stmt,
    emit_service_procedure,
    emit_process,
    emit_entity,
    emit_architecture,
    emit_module,
)

__all__ = [
    "emit_expr",
    "emit_stmt",
    "emit_service_procedure",
    "emit_process",
    "emit_entity",
    "emit_architecture",
    "emit_module",
]
