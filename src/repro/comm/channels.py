"""Channel factories: assemble complete communication units.

Each factory returns a :class:`~repro.core.comm_unit.CommunicationUnit` whose
services are named by the caller, so application models can use the paper's
vocabulary (``SetupControl``, ``ReadMotorState`` ...) while reusing the
generic protocol machinery.
"""

from repro.comm.protocols.fifo import (
    fifo_ports,
    make_fifo_controller,
    make_fifo_get_service,
    make_fifo_put_service,
)
from repro.comm.protocols.handshake import (
    handshake_ports,
    make_get_service,
    make_handshake_controller,
    make_put_service,
)
from repro.comm.protocols.shared_reg import (
    make_shared_get_service,
    make_shared_put_service,
    shared_register_ports,
)
from repro.core.comm_unit import CommunicationUnit


def handshake_channel(name, put_name="PUT", get_name="GET", prefix="CH",
                      data_width=16, put_interface="producer",
                      get_interface="consumer", description=""):
    """A unidirectional single-register handshake channel (Figure 2 shape)."""
    prefix = f"{prefix}_" if prefix and not prefix.endswith("_") else prefix
    ports = handshake_ports(prefix, data_width)
    services = [
        make_put_service(put_name, prefix, data_width, interface=put_interface),
        make_get_service(get_name, prefix, data_width, interface=get_interface),
    ]
    controller = make_handshake_controller(f"{name}Ctrl", prefix)
    return CommunicationUnit(
        name, ports=ports, services=services, controller=controller,
        description=description or "single-register full/empty handshake channel",
    )


def fifo_channel(name, put_name="PUSH", get_name="POP", prefix="FF",
                 depth=4, data_width=16, put_interface="producer",
                 get_interface="consumer", description=""):
    """A unidirectional FIFO channel of the given *depth*."""
    prefix = f"{prefix}_" if prefix and not prefix.endswith("_") else prefix
    ports = fifo_ports(prefix, data_width)
    services = [
        make_fifo_put_service(put_name, prefix, data_width, interface=put_interface),
        make_fifo_get_service(get_name, prefix, data_width, interface=get_interface),
    ]
    controller = make_fifo_controller(f"{name}Ctrl", prefix, depth=depth,
                                      data_width=data_width)
    return CommunicationUnit(
        name, ports=ports, services=services, controller=controller,
        description=description or f"FIFO channel of depth {depth}",
    )


def shared_register_channel(name, put_name="WRITE", get_name="SAMPLE", prefix="SR",
                            data_width=16, put_interface="producer",
                            get_interface="consumer", description=""):
    """A shared register with no flow control (lossy, lowest latency)."""
    prefix = f"{prefix}_" if prefix and not prefix.endswith("_") else prefix
    ports = shared_register_ports(prefix, data_width)
    services = [
        make_shared_put_service(put_name, prefix, data_width, interface=put_interface),
        make_shared_get_service(get_name, prefix, data_width, interface=get_interface),
    ]
    return CommunicationUnit(
        name, ports=ports, services=services,
        description=description or "shared register (no flow control)",
    )
