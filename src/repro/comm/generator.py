"""Automatic view generation.

For every service of a communication unit the generator produces

* the **HW view** — a VHDL procedure (:func:`repro.hdl.emit_service_procedure`),
* the **SW simulation view** — C against the simulator CLI,
* one **SW synthesis view** per requested platform — C against that
  platform's port-access syntax (including its physical address map).

All three come from the single abstract service FSM, which is what makes the
co-simulation and co-synthesis descriptions coherent by construction.
"""

from repro.core.views import MultiViewLibrary, View, ViewKind
from repro.hdl.emitter import EmitContext, emit_service_procedure
from repro.ir.dtypes import BitType
from repro.swc.emitter import emit_service_view
from repro.swc.syntax import CliPortSyntax
from repro.utils.errors import ViewError


def _bit_ports_of(unit):
    return {name for name, port in unit.ports.items() if isinstance(port.dtype, BitType)}


def generate_service_views(unit, service_name, platforms=None):
    """Generate all views of one service of *unit*.

    *platforms* maps platform names to
    :class:`~repro.swc.syntax.PortAccessSyntax` instances (typically obtained
    from :meth:`repro.platforms.base.Platform.port_syntax_for`).
    Returns the list of :class:`View` objects.
    """
    service = unit.service(service_name)
    bit_ports = _bit_ports_of(unit)
    views = [
        View(
            service.name,
            ViewKind.HW,
            "vhdl",
            emit_service_procedure(service, EmitContext(bit_ports=bit_ports)),
            metadata={"unit": unit.name},
        ),
        View(
            service.name,
            ViewKind.SW_SIM,
            "c",
            emit_service_view(service, CliPortSyntax()),
            metadata={"unit": unit.name},
        ),
    ]
    for platform_name, syntax in (platforms or {}).items():
        views.append(
            View(
                service.name,
                ViewKind.SW_SYNTH,
                "c",
                emit_service_view(service, syntax),
                platform=platform_name,
                metadata={
                    "unit": unit.name,
                    "read_cycles": syntax.read_cycles,
                    "write_cycles": syntax.write_cycles,
                },
            )
        )
    return views


def build_view_library(units, platforms=None, library=None):
    """Populate a :class:`MultiViewLibrary` with the views of every service.

    *units* is an iterable of communication units; *platforms* maps platform
    names to port-access syntaxes.  An existing *library* can be passed to be
    extended; duplicate services across units are rejected, mirroring the
    paper's requirement that a service name identify one procedure of the
    component library.
    """
    library = library if library is not None else MultiViewLibrary()
    seen = set()
    for unit in units:
        for service_name in unit.services:
            if service_name in seen:
                raise ViewError(
                    f"service {service_name!r} is offered by more than one unit; "
                    "service names must be unique across the component library"
                )
            seen.add(service_name)
            for view in generate_service_views(unit, service_name, platforms):
                library.add(view)
    return library
