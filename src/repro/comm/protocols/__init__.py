"""Parametric protocol generators for communication units."""
