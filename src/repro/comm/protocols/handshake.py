"""Register channel with a full/empty handshake — the paper's Figure 3 protocol.

One direction of data transfer uses five ports (names are prefixed so several
channels can coexist inside one communication unit):

========= ======== =============================================================
port       writer   meaning
========= ======== =============================================================
DATAIN     put      the word being transferred
PUTRDY     put      producer strobes "a word is on DATAIN"
TAGIN      put      optional command tag distinguishing logical streams
BUF        ctrl     the controller's buffer register (read by get)
TAGBUF     ctrl     buffered tag
B_FULL     ctrl     buffer-full flag (the ``B_FULL`` of the paper)
GETACK     get      consumer strobes "I have taken the word"
========= ======== =============================================================

The **controller** latches ``DATAIN`` into ``BUF`` when the producer strobes
ready, raises ``B_FULL``, and releases it once the consumer acknowledges.
The **put** service FSM reproduces the paper's PUT (INIT / WAIT_B_FULL /
DATA_RDY / IDLE states); the **get** service waits for ``B_FULL`` (and a
matching tag), captures ``BUF`` and acknowledges.
"""

from repro.core.port import Port, PortDirection
from repro.core.service import Service, ServiceParam
from repro.ir.builder import FsmBuilder
from repro.ir.dtypes import BIT, word_type
from repro.ir.expr import port, var
from repro.ir.stmt import Assign, PortWrite


def handshake_ports(prefix, data_width=16, with_tag=False):
    """Return the Port list of one handshake channel with the given *prefix*."""
    data_type = word_type(data_width)
    ports = [
        Port(f"{prefix}DATAIN", PortDirection.IN, data_type,
             "word written by the producer"),
        Port(f"{prefix}PUTRDY", PortDirection.IN, BIT, "producer data-ready strobe"),
        Port(f"{prefix}BUF", PortDirection.OUT, data_type, "controller buffer register"),
        Port(f"{prefix}FULL", PortDirection.OUT, BIT, "buffer-full flag (B_FULL)"),
        Port(f"{prefix}GETACK", PortDirection.IN, BIT, "consumer acknowledge strobe"),
    ]
    if with_tag:
        ports.append(Port(f"{prefix}TAGIN", PortDirection.IN, word_type(8),
                          "command tag written by the producer"))
        ports.append(Port(f"{prefix}TAGBUF", PortDirection.OUT, word_type(8),
                          "buffered command tag"))
    return ports


def make_put_service(name, prefix, data_width=16, tag=None, interface=None,
                     param_name="REQUEST", description=""):
    """Build the producer-side ``put`` access procedure (paper Figure 3).

    *tag* — when given, the value written to the channel's tag port, letting
    several logical commands share one physical channel.
    """
    data_type = word_type(data_width)
    build = FsmBuilder(name)
    build.variable(param_name, data_type, 0)
    build.ports(f"{prefix}DATAIN", f"{prefix}FULL", f"{prefix}PUTRDY")
    with build.state("INIT") as state:
        state.go("WAIT_B_FULL", when=port(f"{prefix}FULL").eq(1))
        actions = [PortWrite(f"{prefix}DATAIN", var(param_name)),
                   PortWrite(f"{prefix}PUTRDY", 1)]
        if tag is not None:
            actions.insert(1, PortWrite(f"{prefix}TAGIN", tag))
        state.go("DATA_RDY", actions=actions)
    with build.state("WAIT_B_FULL") as state:
        state.go("INIT", when=port(f"{prefix}FULL").eq(0))
        state.stay()
    with build.state("DATA_RDY") as state:
        state.go("IDLE", when=port(f"{prefix}FULL").eq(1),
                 actions=[PortWrite(f"{prefix}PUTRDY", 0)])
        state.stay()
    with build.state("IDLE", done=True) as state:
        state.go("INIT")
    fsm = build.build(initial="INIT")
    return Service(
        name, fsm,
        params=[ServiceParam(param_name, data_type)],
        interface=interface,
        description=description or f"blocking put over channel {prefix!r}",
    )


def make_get_service(name, prefix, data_width=16, tag=None, interface=None,
                     result_name="VALUE", description=""):
    """Build the consumer-side ``get`` access procedure.

    When *tag* is given the service only consumes words carrying that tag,
    leaving differently-tagged words for the other get services of the unit.
    """
    data_type = word_type(data_width)
    build = FsmBuilder(name)
    build.variable(result_name, data_type, 0)
    build.returns(result_name)
    build.ports(f"{prefix}BUF", f"{prefix}FULL", f"{prefix}GETACK")
    full_is_up = port(f"{prefix}FULL").eq(1)
    if tag is not None:
        guard = full_is_up.and_(port(f"{prefix}TAGBUF").eq(tag))
    else:
        guard = full_is_up
    with build.state("INIT") as state:
        state.go("TAKE", when=guard,
                 actions=[Assign(result_name, port(f"{prefix}BUF")),
                          PortWrite(f"{prefix}GETACK", 1)])
        state.stay()
    with build.state("TAKE") as state:
        state.go("IDLE", when=port(f"{prefix}FULL").eq(0),
                 actions=[PortWrite(f"{prefix}GETACK", 0)])
        state.stay()
    with build.state("IDLE", done=True) as state:
        state.go("INIT")
    fsm = build.build(initial="INIT")
    return Service(
        name, fsm,
        params=(),
        returns=data_type,
        interface=interface,
        description=description or f"blocking get over channel {prefix!r}",
    )


def make_handshake_controller(name, prefix, with_tag=False):
    """Build the channel controller FSM (latches data, manages ``B_FULL``)."""
    from repro.core.comm_unit import CommunicationController

    build = FsmBuilder(name)
    build.ports(f"{prefix}DATAIN", f"{prefix}PUTRDY", f"{prefix}BUF",
                f"{prefix}FULL", f"{prefix}GETACK")
    with build.state("EMPTY") as state:
        actions = [PortWrite(f"{prefix}BUF", port(f"{prefix}DATAIN")),
                   PortWrite(f"{prefix}FULL", 1)]
        if with_tag:
            actions.insert(1, PortWrite(f"{prefix}TAGBUF", port(f"{prefix}TAGIN")))
        state.go("OCCUPIED", when=port(f"{prefix}PUTRDY").eq(1), actions=actions)
        state.stay()
    with build.state("OCCUPIED") as state:
        # FULL is only released once the consumer acknowledged AND the
        # producer dropped its ready strobe: releasing earlier would let a
        # slow producer's still-asserted PUTRDY re-latch the same word, and
        # would hide the FULL pulse from a producer slower than the consumer.
        state.go("RELEASE",
                 when=port(f"{prefix}GETACK").eq(1)
                 .and_(port(f"{prefix}PUTRDY").eq(0)),
                 actions=[PortWrite(f"{prefix}FULL", 0)])
        state.stay()
    with build.state("RELEASE") as state:
        state.go("EMPTY", when=port(f"{prefix}GETACK").eq(0))
        state.stay()
    fsm = build.build(initial="EMPTY")
    return CommunicationController(
        name, fsm,
        description=f"full/empty handshake controller of channel {prefix!r}",
        protocol="handshake_tagged" if with_tag else "handshake",
    )
