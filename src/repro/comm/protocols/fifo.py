"""FIFO-buffered channel.

Compared with the single-register handshake of
:mod:`repro.comm.protocols.handshake`, the FIFO controller decouples producer
and consumer: the producer can push up to *depth* words before blocking.
The port interface separates the producer-side ``PFULL`` flag from the
consumer-side ``CAVAIL`` flag; the controller keeps the storage slots as
internal variables and performs the head/tail bookkeeping.

This protocol is the subject of the ABL-PROTOCOL ablation: the access
procedure FSMs stay small while the controller grows, demonstrating that the
communication-unit abstraction really does hide protocol complexity from the
modules.
"""

from repro.core.comm_unit import CommunicationController
from repro.core.port import Port, PortDirection
from repro.core.service import Service, ServiceParam
from repro.ir.builder import FsmBuilder
from repro.ir.dtypes import BIT, IntType, word_type
from repro.ir.expr import port, var
from repro.ir.stmt import Assign, If, PortWrite
from repro.utils.errors import ModelError


def fifo_ports(prefix, data_width=16):
    """Port list of a FIFO channel (storage itself lives in the controller)."""
    data_type = word_type(data_width)
    return [
        Port(f"{prefix}DATAIN", PortDirection.IN, data_type, "word pushed by the producer"),
        Port(f"{prefix}PUTRDY", PortDirection.IN, BIT, "producer push strobe"),
        Port(f"{prefix}PFULL", PortDirection.OUT, BIT, "FIFO full (producer side)"),
        Port(f"{prefix}BUF", PortDirection.OUT, data_type, "word offered to the consumer"),
        Port(f"{prefix}CAVAIL", PortDirection.OUT, BIT, "word available (consumer side)"),
        Port(f"{prefix}GETACK", PortDirection.IN, BIT, "consumer pop acknowledge"),
    ]


def make_fifo_put_service(name, prefix, data_width=16, interface=None,
                          param_name="REQUEST"):
    """Producer-side push: blocks while the FIFO is full."""
    data_type = word_type(data_width)
    build = FsmBuilder(name)
    build.variable(param_name, data_type, 0)
    build.ports(f"{prefix}DATAIN", f"{prefix}PUTRDY", f"{prefix}PFULL")
    with build.state("INIT") as state:
        state.go("WAIT_SPACE", when=port(f"{prefix}PFULL").eq(1))
        state.go("STROBE", actions=[PortWrite(f"{prefix}DATAIN", var(param_name)),
                                    PortWrite(f"{prefix}PUTRDY", 1)])
    with build.state("WAIT_SPACE") as state:
        state.go("INIT", when=port(f"{prefix}PFULL").eq(0))
        state.stay()
    with build.state("STROBE") as state:
        state.go("IDLE", actions=[PortWrite(f"{prefix}PUTRDY", 0)])
    with build.state("IDLE", done=True) as state:
        state.go("INIT")
    fsm = build.build(initial="INIT")
    return Service(name, fsm, params=[ServiceParam(param_name, data_type)],
                   interface=interface,
                   description=f"FIFO push over channel {prefix!r}")


def make_fifo_get_service(name, prefix, data_width=16, interface=None,
                          result_name="VALUE"):
    """Consumer-side pop: blocks until a word is available."""
    data_type = word_type(data_width)
    build = FsmBuilder(name)
    build.variable(result_name, data_type, 0)
    build.returns(result_name)
    build.ports(f"{prefix}BUF", f"{prefix}CAVAIL", f"{prefix}GETACK")
    with build.state("INIT") as state:
        state.go("TAKE", when=port(f"{prefix}CAVAIL").eq(1),
                 actions=[Assign(result_name, port(f"{prefix}BUF")),
                          PortWrite(f"{prefix}GETACK", 1)])
        state.stay()
    with build.state("TAKE") as state:
        state.go("IDLE", when=port(f"{prefix}CAVAIL").eq(0),
                 actions=[PortWrite(f"{prefix}GETACK", 0)])
        state.stay()
    with build.state("IDLE", done=True) as state:
        state.go("INIT")
    fsm = build.build(initial="INIT")
    return Service(name, fsm, params=(), returns=data_type, interface=interface,
                   description=f"FIFO pop over channel {prefix!r}")


def _select_slot(index_var, slot_names, make_action):
    """Build a nested If choosing a slot register by the value of *index_var*.

    *make_action* maps a slot name to the list of statements to run when that
    slot is selected.
    """
    statement = If(var(index_var).eq(len(slot_names) - 1),
                   make_action(slot_names[-1]), [])
    for index in range(len(slot_names) - 2, -1, -1):
        statement = If(var(index_var).eq(index), make_action(slot_names[index]),
                       [statement])
    return statement


def make_fifo_controller(name, prefix, depth=4, data_width=16):
    """Build the FIFO controller FSM with *depth* internal slot registers."""
    if depth < 1 or depth > 16:
        raise ModelError(f"FIFO depth must be between 1 and 16, got {depth}")
    data_type = word_type(data_width)
    index_type = IntType(0, max(depth, 2))
    count_type = IntType(0, depth + 1)
    slot_names = [f"SLOT{index}" for index in range(depth)]

    build = FsmBuilder(name)
    for slot in slot_names:
        build.variable(slot, data_type, 0)
    build.variable("HEAD", index_type, 0)
    build.variable("TAIL", index_type, 0)
    build.variable("COUNT", count_type, 0)
    build.variable("PREVRDY", word_type(1), 0)
    build.variable("PREVACK", word_type(1), 0)
    build.variable("OFFERED", word_type(1), 0)
    build.variable("WAITREL", word_type(1), 0)
    build.ports(f"{prefix}DATAIN", f"{prefix}PUTRDY", f"{prefix}PFULL",
                f"{prefix}BUF", f"{prefix}CAVAIL", f"{prefix}GETACK")

    push_condition = (
        port(f"{prefix}PUTRDY").eq(1)
        .and_(var("PREVRDY").eq(0))
        .and_(var("COUNT").lt(depth))
    )
    push_actions = [
        _select_slot("TAIL", slot_names,
                     lambda slot: [Assign(slot, port(f"{prefix}DATAIN"))]),
        Assign("TAIL", BinMod(var("TAIL") + 1, depth)),
        Assign("COUNT", var("COUNT") + 1),
    ]
    # The consumer side is a true four-phase exchange.  A pop commits only
    # on a *rising edge* of GETACK (``PREVACK`` edge-tracks it exactly the
    # way ``PREVRDY`` edge-tracks ``PUTRDY``), and after a pop the
    # controller parks in a release-wait (``WAITREL``): it does not offer
    # the next word until it has observed GETACK low in a cycle *after*
    # the pop.  The release-wait clears one cycle behind the observation
    # (the clear runs after the offer guard below), so ``CAVAIL`` stays
    # low for at least two controller cycles between words — long enough
    # that a consumer sampling at the module activation rate always
    # witnesses the gap, and a forced-then-released acknowledge can delay
    # a word but never pop one the consumer did not capture.
    offer_condition = (
        var("OFFERED").eq(0)
        .and_(var("WAITREL").eq(0))
        .and_(var("COUNT").gt(0))
        .and_(port(f"{prefix}GETACK").eq(0))
    )
    offer_actions = [
        _select_slot("HEAD", slot_names,
                     lambda slot: [PortWrite(f"{prefix}BUF", var(slot))]),
        PortWrite(f"{prefix}CAVAIL", 1),
        Assign("OFFERED", 1),
    ]
    pop_condition = (
        var("OFFERED").eq(1)
        .and_(port(f"{prefix}GETACK").eq(1))
        .and_(var("PREVACK").eq(0))
    )
    pop_actions = [
        PortWrite(f"{prefix}CAVAIL", 0),
        Assign("OFFERED", 0),
        Assign("WAITREL", 1),
        Assign("HEAD", BinMod(var("HEAD") + 1, depth)),
        Assign("COUNT", var("COUNT") - 1),
    ]
    release_condition = (
        var("WAITREL").eq(1).and_(port(f"{prefix}GETACK").eq(0))
    )

    with build.state("RUN") as state:
        state.do(
            If(push_condition, push_actions, []),
            If(pop_condition, pop_actions, []),
            If(offer_condition, offer_actions, []),
            If(release_condition, [Assign("WAITREL", 0)], []),
            Assign("PREVRDY", port(f"{prefix}PUTRDY")),
            Assign("PREVACK", port(f"{prefix}GETACK")),
            PortWrite(f"{prefix}PFULL", var("COUNT").ge(depth)),
        )
        state.stay()
    fsm = build.build(initial="RUN")
    return CommunicationController(
        name, fsm,
        description=f"FIFO controller (depth {depth}) of channel {prefix!r}",
        protocol=f"fifo(depth={depth})",
    )


def BinMod(expr, modulus):
    """Helper building ``expr mod modulus`` (modulus 1 folds to 0)."""
    from repro.ir.expr import BinOp
    if modulus == 1:
        from repro.ir.expr import Const
        return Const(0)
    return BinOp("mod", expr, modulus)
