"""Shared-register channel: a single register with no flow control.

This is the cheapest communication scheme of the library — the producer
overwrites the register, the consumer samples it, and words may be lost or
read twice.  It models the "shared resource" communication property the
paper lists and is used by the HW/HW Motor interface (sampled motor
coordinates are naturally a shared register) and by the ABL-PROTOCOL
ablation as the lower latency bound.
"""

from repro.core.port import Port, PortDirection
from repro.core.service import Service, ServiceParam
from repro.ir.builder import FsmBuilder
from repro.ir.dtypes import word_type
from repro.ir.expr import port, var
from repro.ir.stmt import Assign, PortWrite


def shared_register_ports(prefix, data_width=16):
    """Port list of a shared-register channel (a single data register)."""
    data_type = word_type(data_width)
    return [
        Port(f"{prefix}REG", PortDirection.INOUT, data_type,
             "shared data register (no flow control)"),
    ]


def make_shared_put_service(name, prefix, data_width=16, interface=None,
                            param_name="REQUEST"):
    """Non-blocking write of the shared register (completes in one step)."""
    data_type = word_type(data_width)
    build = FsmBuilder(name)
    build.variable(param_name, data_type, 0)
    build.ports(f"{prefix}REG")
    with build.state("WRITE") as state:
        state.go("IDLE", actions=[PortWrite(f"{prefix}REG", var(param_name))])
    with build.state("IDLE", done=True) as state:
        state.go("WRITE")
    fsm = build.build(initial="WRITE")
    return Service(name, fsm, params=[ServiceParam(param_name, data_type)],
                   interface=interface,
                   description=f"non-blocking write of shared register {prefix!r}")


def make_shared_get_service(name, prefix, data_width=16, interface=None,
                            result_name="VALUE"):
    """Non-blocking sample of the shared register (completes in one step)."""
    data_type = word_type(data_width)
    build = FsmBuilder(name)
    build.variable(result_name, data_type, 0)
    build.returns(result_name)
    build.ports(f"{prefix}REG")
    with build.state("SAMPLE") as state:
        state.go("IDLE", actions=[Assign(result_name, port(f"{prefix}REG"))])
    with build.state("IDLE", done=True) as state:
        state.go("SAMPLE")
    fsm = build.build(initial="SAMPLE")
    return Service(name, fsm, params=(), returns=data_type, interface=interface,
                   description=f"non-blocking sample of shared register {prefix!r}")
