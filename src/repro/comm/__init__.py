"""Library of communication units (paper §3).

The package provides

* **protocol generators** (:mod:`repro.comm.protocols`) — parametric
  builders of the port sets, controller FSMs and ``put``/``get`` service FSMs
  of handshake, FIFO and shared-register channels,
* **channel factories** (:mod:`repro.comm.channels`) — assemble complete
  :class:`~repro.core.comm_unit.CommunicationUnit` objects from those pieces,
* **view generation** (:mod:`repro.comm.generator`) — produce the HW view,
  the SW simulation view and the per-platform SW synthesis views of every
  service of a unit, populating a
  :class:`~repro.core.views.MultiViewLibrary`.
"""

from repro.comm.protocols.handshake import (
    handshake_ports,
    make_put_service,
    make_get_service,
    make_handshake_controller,
)
from repro.comm.protocols.fifo import (
    fifo_ports,
    make_fifo_put_service,
    make_fifo_get_service,
    make_fifo_controller,
)
from repro.comm.protocols.shared_reg import (
    shared_register_ports,
    make_shared_put_service,
    make_shared_get_service,
)
from repro.comm.channels import (
    handshake_channel,
    fifo_channel,
    shared_register_channel,
)
from repro.comm.generator import generate_service_views, build_view_library

__all__ = [
    "handshake_ports",
    "make_put_service",
    "make_get_service",
    "make_handshake_controller",
    "fifo_ports",
    "make_fifo_put_service",
    "make_fifo_get_service",
    "make_fifo_controller",
    "shared_register_ports",
    "make_shared_put_service",
    "make_shared_get_service",
    "handshake_channel",
    "fifo_channel",
    "shared_register_channel",
    "generate_service_views",
    "build_view_library",
]
